"""Tests for the streaming churn subsystem: events, log, churn, replay."""

from __future__ import annotations

import random

import pytest

from repro.core import Topology
from repro.errors import DecodeError, MalformedPayloadError, TruncatedPayloadError
from repro.hashing import PublicCoins
from repro.store import SketchStore, StoreConfig
from repro.stream import (
    EventLogReader,
    EventLogWriter,
    MutationEvent,
    StreamReplayer,
    record_line,
    render_replay_report,
    split_mutations,
    write_event_log,
)
from repro.workloads import ChurnGenerator

COINS = PublicCoins(0x57FEA)


def _workload(n=16, windows=3, rate=5, skew=1.0, sources=3, key_bits=55):
    generator = ChurnGenerator(COINS.child("workload"), key_bits=key_bits)
    return generator.generate(
        n=n, windows=windows, rate=rate, skew=skew, sources=sources
    )


class TestMutationEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            MutationEvent(key=1, op="upsert", window=0)
        with pytest.raises(ValueError):
            MutationEvent(key=-1, op="insert", window=0)
        with pytest.raises(ValueError):
            MutationEvent(key=1, op="insert", window=-1)
        with pytest.raises(ValueError):
            MutationEvent(key=1, op="insert", window=0, source=-1)
        with pytest.raises(ValueError):
            MutationEvent(key=True, op="insert", window=0)

    def test_record_round_trip(self):
        event = MutationEvent(key=7, op="delete", window=2, source=1)
        assert MutationEvent.from_record(event.to_record(5)) == event

    def test_split_mutations_preserves_order(self):
        events = [
            MutationEvent(key=3, op="insert", window=0),
            MutationEvent(key=1, op="delete", window=0),
            MutationEvent(key=2, op="insert", window=0),
        ]
        assert split_mutations(events) == ([3, 2], [1])
        with pytest.raises(TypeError):
            split_mutations([("not", "an", "event")])


class TestEventLog:
    def test_round_trip(self, tmp_path):
        workload = _workload()
        path = tmp_path / "churn.ndjson"
        count = write_event_log(path, workload.events, key_bits=55, meta={"n": 16})
        assert count == len(workload.events)
        reader = EventLogReader.open(path)
        assert reader.header()["key_bits"] == 55
        assert reader.header()["meta"] == {"n": 16}
        assert tuple(reader.read_all()) == workload.events

    def test_writer_enforces_discipline(self, tmp_path):
        writer = EventLogWriter(tmp_path / "log", key_bits=8)
        writer.append(MutationEvent(key=5, op="insert", window=1))
        with pytest.raises(ValueError):
            writer.append(MutationEvent(key=5, op="delete", window=0))  # regress
        with pytest.raises(ValueError):
            writer.append(MutationEvent(key=256, op="insert", window=1))  # range
        with pytest.raises(TypeError):
            writer.append("not an event")
        writer.close()

    def test_empty_and_unterminated_are_truncated(self):
        with pytest.raises(TruncatedPayloadError):
            EventLogReader(b"").read_all()
        header = record_line({"kind": "header", "schema": "repro.events/v1",
                              "key_bits": 8, "meta": {}})
        with pytest.raises(TruncatedPayloadError):
            EventLogReader(header[:-1]).read_all()

    def _valid_lines(self) -> list[bytes]:
        header = record_line({"kind": "header", "schema": "repro.events/v1",
                              "key_bits": 8, "meta": {}})
        e0 = record_line(MutationEvent(key=1, op="insert", window=0).to_record(0))
        e1 = record_line(MutationEvent(key=2, op="insert", window=1).to_record(1))
        return [header, e0, e1]

    def test_valid_crafted_log_parses(self):
        events = EventLogReader(b"".join(self._valid_lines())).read_all()
        assert [event.key for event in events] == [1, 2]

    def test_duplicate_seq_rejected(self):
        header, e0, _ = self._valid_lines()
        with pytest.raises(MalformedPayloadError, match="out of order"):
            EventLogReader(header + e0 + e0).read_all()

    def test_seq_gap_rejected(self):
        header, e0, _ = self._valid_lines()
        e2 = record_line(MutationEvent(key=2, op="insert", window=0).to_record(2))
        with pytest.raises(MalformedPayloadError, match="out of order"):
            EventLogReader(header + e0 + e2).read_all()

    def test_window_regression_rejected(self):
        header, _, e1 = self._valid_lines()
        later = record_line(MutationEvent(key=3, op="insert", window=2).to_record(0))
        earlier = record_line(MutationEvent(key=4, op="insert", window=1).to_record(1))
        with pytest.raises(MalformedPayloadError, match="regresses"):
            EventLogReader(header + later + earlier).read_all()

    def test_crc_tamper_rejected(self):
        header, e0, e1 = self._valid_lines()
        tampered = e0.replace(b'"key":1', b'"key":9')
        with pytest.raises(MalformedPayloadError, match="crc"):
            EventLogReader(header + tampered + e1).read_all()

    def test_wrong_schema_and_duplicate_header_rejected(self):
        bad_header = record_line({"kind": "header", "schema": "repro.events/v9",
                                  "key_bits": 8, "meta": {}})
        with pytest.raises(MalformedPayloadError, match="schema"):
            EventLogReader(bad_header).read_all()
        header, e0, _ = self._valid_lines()
        with pytest.raises(MalformedPayloadError, match="duplicate header"):
            EventLogReader(header + header + e0).read_all()

    def test_key_out_of_range_rejected(self):
        header, e0, _ = self._valid_lines()
        big = record_line(MutationEvent(key=256, op="insert", window=1).to_record(1))
        with pytest.raises(MalformedPayloadError, match="outside"):
            EventLogReader(header + e0 + big).read_all()

    def test_garbage_line_rejected(self):
        header, e0, _ = self._valid_lines()
        with pytest.raises(MalformedPayloadError):
            EventLogReader(header + e0 + b"not json at all\n").read_all()


class TestEventLogFuzz:
    """Seeded fuzz mirroring tests/test_errors_fuzz.py: random truncations,
    bit-flips and garbage injections of a valid log may fail or (for a
    truncation landing on a line boundary) succeed, but only the typed
    ``DecodeError`` family may escape the reader."""

    TRIALS = 48

    def _payload(self) -> bytes:
        workload = _workload(n=12, windows=2, rate=4)
        lines = [record_line({"kind": "header", "schema": "repro.events/v1",
                              "key_bits": 55, "meta": {}})]
        lines += [
            record_line(event.to_record(seq))
            for seq, event in enumerate(workload.events)
        ]
        return b"".join(lines)

    def _assert_only_decode_error(self, data: bytes) -> None:
        try:
            EventLogReader(data).read_all()
        except DecodeError:
            pass
        except Exception as error:  # pragma: no cover - the failure branch
            raise AssertionError(
                f"untyped {type(error).__name__} escaped EventLogReader: {error}"
            ) from error

    def test_truncations(self):
        payload = self._payload()
        rng = random.Random(0x7A17)
        for _ in range(self.TRIALS):
            self._assert_only_decode_error(payload[: rng.randrange(len(payload))])

    def test_bit_flips(self):
        payload = self._payload()
        rng = random.Random(0xF11B)
        for _ in range(self.TRIALS):
            corrupted = bytearray(payload)
            for _ in range(1 + rng.randrange(4)):
                position = rng.randrange(8 * len(payload))
                corrupted[position // 8] ^= 1 << (position % 8)
            self._assert_only_decode_error(bytes(corrupted))

    def test_garbage_lines(self):
        payload = self._payload()
        rng = random.Random(0x6A5B)
        lines = payload.split(b"\n")
        for _ in range(self.TRIALS):
            garbage = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 40)))
            position = rng.randrange(len(lines))
            mutated = lines[:position] + [garbage] + lines[position:]
            self._assert_only_decode_error(b"\n".join(mutated))


class TestChurnGenerator:
    def test_deterministic(self):
        assert _workload().events == _workload().events

    def test_window_zero_is_the_population(self):
        workload = _workload(n=16)
        initial = workload.window_events(0)
        assert len(initial) == 16
        assert all(event.op == "insert" for event in initial)
        assert workload.n_initial == 16

    def test_each_window_touches_keys_once(self):
        workload = _workload(n=16, windows=4, rate=8)
        for window in range(workload.windows + 1):
            keys = [event.key for event in workload.window_events(window)]
            assert len(keys) == len(set(keys))

    def test_ground_truth_is_consistent(self):
        workload = _workload(n=16, windows=3, rate=6)
        members: set[int] = set()
        for event in workload.events:
            if event.op == "insert":
                assert event.key not in members  # fresh keys only
                members.add(event.key)
            else:
                assert event.key in members  # only live keys die
                members.remove(event.key)
        assert members == workload.final_membership

    def test_sources_are_in_range(self):
        workload = _workload(sources=3)
        assert {event.source for event in workload.events} <= {0, 1, 2}

    def test_skew_zero_and_high_both_valid(self):
        for skew in (0.0, 3.0):
            workload = _workload(skew=skew, windows=2, rate=6)
            assert len(workload.events) > 16

    def test_validation(self):
        generator = ChurnGenerator(COINS, key_bits=8)
        with pytest.raises(ValueError):
            generator.generate(n=0, windows=1, rate=1)
        with pytest.raises(ValueError):
            generator.generate(n=4, windows=1, rate=1, skew=-1.0)
        with pytest.raises(ValueError):
            generator.generate(n=4, windows=1, rate=1, insert_fraction=1.5)
        with pytest.raises(ValueError):
            ChurnGenerator(COINS, key_bits=64)


class TestStoreApplyEvents:
    def test_events_equal_raw_mutations(self):
        workload = _workload(n=16, windows=2, rate=5, sources=1)
        store_a = SketchStore(StoreConfig(seed=11))
        store_b = SketchStore(StoreConfig(seed=11))
        store_a.put_set(1, (), key_bits=55)
        store_b.put_set(1, (), key_bits=55)
        serve = lambda store: store.serve_iblt(1, COINS.child("s"), "slot", 24, q=3)
        serve(store_a), serve(store_b)  # build warm slots over the empty set
        for window in range(workload.windows + 1):
            batch = list(workload.window_events(window))
            applied = store_a.apply_events(1, batch)
            assert applied == len(batch)
            inserts, deletes = split_mutations(batch)
            store_b.apply_mutations(1, inserts=inserts, deletes=deletes)
        assert store_a.keys_of(1) == store_b.keys_of(1) == workload.final_membership
        assert serve(store_a) == serve(store_b)

    def test_set_discipline_still_enforced(self):
        store = SketchStore(StoreConfig(seed=11))
        store.put_set(1, (5,), key_bits=55)
        with pytest.raises(ValueError):
            store.apply_events(1, [MutationEvent(key=5, op="insert", window=0)])
        with pytest.raises(ValueError):
            store.apply_events(1, [MutationEvent(key=6, op="delete", window=0)])
        assert store.keys_of(1) == {5}


class TestStreamReplayer:
    @pytest.mark.parametrize("kind", ["star", "ring", "tree", "random"])
    def test_replay_converges_and_matches_cold(self, kind):
        workload = _workload(n=14, windows=2, rate=5, sources=4)
        topology = Topology.build(kind, 4, coins=COINS.child("topology"))
        replayer = StreamReplayer(topology, COINS.child("replay"), key_bits=55)
        report = replayer.replay(workload.events)
        assert report.converged
        assert report.matches_cold_rebuild
        assert report.success
        assert report.topology == kind
        assert sum(bits for _, _, bits in report.edge_bits) == report.total_bits

    def test_report_is_backend_free_and_identical(self, monkeypatch):
        workload = _workload(n=10, windows=2, rate=3, sources=3)
        documents = {}
        for backend in ("numpy", "python"):
            monkeypatch.setenv("REPRO_BACKEND", backend)
            replayer = StreamReplayer(
                Topology.ring(3), COINS.child("replay"), key_bits=55
            )
            report = replayer.replay(workload.events)
            assert report.success
            documents[backend] = render_replay_report(report, seed=0)
        assert documents["numpy"] == documents["python"]
        assert "backend" not in documents["numpy"]

    def test_incremental_refreshes_engage(self):
        workload = _workload(n=14, windows=3, rate=5, sources=3)
        replayer = StreamReplayer(Topology.star(3), COINS.child("replay"), key_bits=55)
        report = replayer.replay(workload.events)
        assert report.incremental_refreshes > 0
        assert report.store_hits > 0
