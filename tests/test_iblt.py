"""Tests for the classic IBLT (Theorem 2.6 behaviour)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import PublicCoins
from repro.iblt import IBLT, cells_for_differences
from repro.protocol import BitReader, iblt_payload, read_iblt_cells


def _table(coins, cells=90, q=3, key_bits=40, label="t"):
    return IBLT(coins, label, cells=cells, q=q, key_bits=key_bits)


class TestBasics:
    def test_insert_then_delete_empty(self, coins):
        table = _table(coins)
        table.insert(123)
        table.delete(123)
        assert table.is_empty()

    def test_cell_indices_distinct(self, coins):
        table = _table(coins, q=4)
        for key in range(50):
            indices = table.cell_indices(key)
            assert len(set(indices)) == 4

    def test_cell_indices_one_per_block(self, coins):
        table = _table(coins, cells=30, q=3)
        for key in range(20):
            for j, index in enumerate(table.cell_indices(key)):
                assert j * table.block_size <= index < (j + 1) * table.block_size

    def test_key_range_enforced(self, coins):
        table = _table(coins, key_bits=8)
        with pytest.raises(ValueError):
            table.insert(256)
        with pytest.raises(ValueError):
            table.insert(-1)

    def test_len_counts_net_items(self, coins):
        table = _table(coins)
        table.insert_all([1, 2, 3])
        assert len(table) == 3
        table.delete(2)
        assert len(table) == 2

    def test_copy_independent(self, coins):
        table = _table(coins)
        table.insert(5)
        clone = table.copy()
        clone.delete(5)
        assert clone.is_empty() and not table.is_empty()

    def test_q_must_be_at_least_2(self, coins):
        with pytest.raises(ValueError):
            IBLT(coins, "x", cells=10, q=1)


class TestDecode:
    def test_simple_decode(self, coins):
        table = _table(coins)
        table.insert_all([10, 20, 30])
        result = table.decode()
        assert result.success
        assert sorted(result.inserted) == [10, 20, 30]
        assert result.deleted == []

    def test_decode_empty(self, coins):
        result = _table(coins).decode()
        assert result.success
        assert result.difference_count == 0

    def test_signed_decode(self, coins):
        table = _table(coins)
        table.insert_all([1, 2])
        table.delete_all([100, 200, 300])
        result = table.decode()
        assert result.success
        assert sorted(result.inserted) == [1, 2]
        assert sorted(result.deleted) == [100, 200, 300]

    def test_decode_is_destructive(self, coins):
        table = _table(coins)
        table.insert(7)
        table.decode()
        assert table.is_empty()

    def test_overloaded_table_reports_failure(self, coins):
        table = _table(coins, cells=9, q=3)
        table.insert_all(range(1000, 1200))
        result = table.decode()
        assert not result.success

    def test_below_threshold_load_decodes(self, coins):
        """Theorem 2.6: load well under c* peels w.h.p."""
        failures = 0
        for seed in range(20):
            table = IBLT(PublicCoins(seed), "load", cells=120, q=3, key_bits=40)
            table.insert_all(range(7000, 7040))  # load = 1/3
            if not table.decode().success:
                failures += 1
        assert failures == 0


class TestReconciliation:
    def test_subtract_recovers_symmetric_difference(self, coins, rng):
        alice = set(int(v) for v in rng.integers(0, 1 << 30, size=200))
        bob = set(alice)
        removed = list(alice)[:5]
        for item in removed:
            bob.discard(item)
        added = [int(v) | (1 << 31) for v in rng.integers(0, 1 << 30, size=7)]
        bob.update(added)

        table_a = _table(coins, key_bits=40, label="recon")
        table_b = _table(coins, key_bits=40, label="recon")
        table_a.insert_all(alice)
        table_b.insert_all(bob)
        result = table_a.subtract(table_b).decode()
        assert result.success
        assert sorted(result.inserted) == sorted(alice - bob)
        assert sorted(result.deleted) == sorted(bob - alice)

    def test_subtract_requires_compatible(self, coins):
        a = _table(coins, cells=30, label="x")
        b = _table(coins, cells=60, label="x")
        with pytest.raises(ValueError):
            a.subtract(b)
        c = _table(coins, cells=30, label="y")
        with pytest.raises(ValueError):
            a.subtract(c)

    def test_identical_sets_cancel(self, coins, rng):
        items = [int(v) for v in rng.integers(0, 1 << 30, size=100)]
        a = _table(coins, label="c")
        b = _table(coins, label="c")
        a.insert_all(items)
        b.insert_all(items)
        assert a.subtract(b).is_empty()

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        alice_extra=st.integers(min_value=0, max_value=8),
        bob_extra=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconciliation_property(self, seed, alice_extra, bob_extra):
        rng = np.random.default_rng(seed)
        shared = {int(v) for v in rng.integers(0, 1 << 20, size=50)}
        alice_only = {int(v) | (1 << 21) for v in rng.integers(0, 1 << 20, size=alice_extra)}
        bob_only = {int(v) | (1 << 22) for v in rng.integers(0, 1 << 20, size=bob_extra)}
        coins = PublicCoins(seed)
        a = IBLT(coins, "prop", cells=120, q=3, key_bits=30)
        b = IBLT(coins, "prop", cells=120, q=3, key_bits=30)
        a.insert_all(shared | alice_only)
        b.insert_all(shared | bob_only)
        result = a.subtract(b).decode()
        assert result.success
        assert set(result.inserted) == alice_only
        assert set(result.deleted) == bob_only


class TestSerialization:
    def test_roundtrip(self, coins, rng):
        table = _table(coins, label="ser")
        table.insert_all(int(v) for v in rng.integers(0, 1 << 30, size=30))
        payload, bits = iblt_payload(table)
        assert bits <= 8 * len(payload)
        shell = _table(coins, label="ser")
        loaded = read_iblt_cells(BitReader(payload), shell)
        assert list(loaded.counts) == list(table.counts)
        assert list(loaded.key_xor) == list(table.key_xor)
        assert list(loaded.check_xor) == list(table.check_xor)

    def test_loaded_table_decodes(self, coins):
        table = _table(coins, label="ser2")
        table.insert_all([5, 6, 7])
        payload, _ = iblt_payload(table)
        loaded = read_iblt_cells(BitReader(payload), _table(coins, label="ser2"))
        result = loaded.decode()
        assert result.success and sorted(result.inserted) == [5, 6, 7]

    def test_shell_must_be_empty(self, coins):
        table = _table(coins, label="ser3")
        payload, _ = iblt_payload(table)
        dirty = _table(coins, label="ser3")
        dirty.insert(1)
        with pytest.raises(ValueError):
            read_iblt_cells(BitReader(payload), dirty)


class TestSizing:
    def test_cells_for_differences_multiple_of_q(self):
        for d in (1, 5, 17, 100):
            assert cells_for_differences(d, q=3) % 3 == 0
            assert cells_for_differences(d, q=4) % 4 == 0

    def test_cells_grow_with_differences(self):
        assert cells_for_differences(10) < cells_for_differences(100)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            cells_for_differences(-1)
