"""Tests for multi-party robust reconciliation (extension, cf. [23])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GapProtocol,
    MultiPartyGapResult,
    multi_party_gap,
    verify_gap_guarantee,
)
from repro.core.multiparty import verify_multi_party_guarantee
from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH
from repro.metric import HammingSpace
from repro.protocol import Channel
from repro.workloads import perturb_point, random_far_point


def _setup(parties=3, n=16, k=1, seed=0):
    """Each party holds a noisy replica of a base cloud plus k private
    far points of its own."""
    rng = np.random.default_rng(seed)
    space = HammingSpace(96)
    r1, r2 = 2.0, 32.0
    base = space.sample(rng, n)
    party_sets = []
    anchors = list(base)
    for _ in range(parties):
        points = [perturb_point(space, point, int(r1), rng) for point in base]
        for _ in range(k):
            outlier = random_far_point(space, anchors, r2 + 8, rng)
            points.append(outlier)
            anchors.append(outlier)
        party_sets.append(points)
    family = BitSamplingMLSH(space, w=96.0)
    params = family.derived_lsh_params(r1=r1, r2=r2)
    protocol = GapProtocol(
        space, family, params, n=n + parties * k, k=parties * k,
        sos_size_multiplier=6.0,
    )
    return space, party_sets, protocol, r2


class TestMultiPartyGap:
    def test_three_parties_guarantee(self):
        space, party_sets, protocol, r2 = _setup(parties=3)
        result = multi_party_gap(protocol, party_sets, PublicCoins(1))
        assert result.success
        assert result.protocol_runs == 4  # 2 * (P - 1)
        assert verify_multi_party_guarantee(space, party_sets, result, r2)

    def test_coordinator_sees_everything_within_r2(self):
        space, party_sets, protocol, r2 = _setup(parties=3, seed=2)
        result = multi_party_gap(protocol, party_sets, PublicCoins(2))
        assert result.success
        hub = result.final_sets[result.coordinator]
        for points in party_sets:
            assert verify_gap_guarantee(space, points, hub, r2)

    def test_private_points_propagate(self):
        """A point only party 2 held must reach party 1 (within 2*r2;
        in practice the exact point travels via the coordinator)."""
        space, party_sets, protocol, r2 = _setup(parties=3, seed=3)
        result = multi_party_gap(protocol, party_sets, PublicCoins(3))
        assert result.success
        private = party_sets[2][-1]  # party 2's planted far point
        final_1 = result.final_sets[1]
        assert min(space.distance(private, q) for q in final_1) <= 2 * r2

    def test_two_parties_degenerates_to_pairwise(self):
        space, party_sets, protocol, r2 = _setup(parties=2, seed=4)
        channel = Channel()
        result = multi_party_gap(
            protocol, party_sets, PublicCoins(4), channel=channel
        )
        assert result.success
        assert result.protocol_runs == 2
        assert result.total_bits == channel.total_bits

    def test_nondefault_coordinator(self):
        space, party_sets, protocol, r2 = _setup(parties=3, seed=5)
        result = multi_party_gap(
            protocol, party_sets, PublicCoins(5), coordinator=2
        )
        assert result.success
        assert result.coordinator == 2
        assert verify_multi_party_guarantee(space, party_sets, result, r2)

    def test_rejects_single_party(self):
        _, party_sets, protocol, _ = _setup(parties=2)
        with pytest.raises(ValueError):
            multi_party_gap(protocol, party_sets[:1], PublicCoins(6))

    def test_rejects_bad_coordinator(self):
        _, party_sets, protocol, _ = _setup(parties=2)
        with pytest.raises(ValueError):
            multi_party_gap(protocol, party_sets, PublicCoins(7), coordinator=5)

    def test_party_final_accessor(self):
        result = MultiPartyGapResult(
            success=True, final_sets=[[(0,)], [(1,)]], coordinator=0,
            total_bits=0, protocol_runs=2,
        )
        assert result.party_final(1) == [(1,)]
