"""Tests for the from-scratch Hungarian algorithm, with scipy as oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment

from repro.metric import greedy_matching, hungarian, matching_cost, min_cost_matching


def _oracle_cost(cost: np.ndarray) -> float:
    rows, cols = linear_sum_assignment(cost)
    return float(cost[rows, cols].sum())


class TestHungarian:
    def test_identity_matrix(self):
        cost = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert hungarian(cost) == [0, 1]

    def test_anti_identity(self):
        cost = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert hungarian(cost) == [1, 0]

    def test_empty(self):
        assert hungarian(np.zeros((0, 3))) == []

    def test_single_row(self):
        cost = np.array([[5.0, 2.0, 9.0]])
        assert hungarian(cost) == [1]

    def test_rectangular_requires_wide(self):
        with pytest.raises(ValueError):
            hungarian(np.zeros((3, 2)))

    def test_rejects_nan(self):
        cost = np.array([[np.nan, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            hungarian(cost)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            hungarian(np.zeros(4))

    def test_assignment_is_injection(self):
        rng = np.random.default_rng(2)
        cost = rng.random((6, 9))
        assignment = hungarian(cost)
        assert len(set(assignment)) == 6
        assert all(0 <= col < 9 for col in assignment)

    def test_matches_scipy_square(self):
        rng = np.random.default_rng(0)
        for trial in range(20):
            n = int(rng.integers(1, 12))
            cost = rng.random((n, n)) * 100
            _, total = min_cost_matching(cost)
            assert total == pytest.approx(_oracle_cost(cost), abs=1e-9)

    def test_matches_scipy_rectangular(self):
        rng = np.random.default_rng(1)
        for trial in range(20):
            rows = int(rng.integers(1, 9))
            cols = rows + int(rng.integers(0, 8))
            cost = rng.random((rows, cols)) * 10
            _, total = min_cost_matching(cost)
            assert total == pytest.approx(_oracle_cost(cost), abs=1e-9)

    def test_matches_scipy_integer_costs(self):
        rng = np.random.default_rng(5)
        cost = rng.integers(0, 50, size=(10, 10)).astype(float)
        _, total = min_cost_matching(cost)
        assert total == pytest.approx(_oracle_cost(cost))

    def test_negative_costs(self):
        rng = np.random.default_rng(6)
        cost = rng.random((5, 7)) - 0.5
        _, total = min_cost_matching(cost)
        assert total == pytest.approx(_oracle_cost(cost), abs=1e-9)

    def test_with_ties(self):
        cost = np.ones((4, 4))
        _, total = min_cost_matching(cost)
        assert total == pytest.approx(4.0)

    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        rows=st.integers(min_value=1, max_value=8),
        extra=st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy_property(self, seed, rows, extra):
        rng = np.random.default_rng(seed)
        cost = rng.random((rows, rows + extra))
        _, total = min_cost_matching(cost)
        assert total == pytest.approx(_oracle_cost(cost), abs=1e-9)


class TestGreedyMatching:
    def test_is_valid_injection(self):
        rng = np.random.default_rng(3)
        cost = rng.random((5, 8))
        assignment, total = greedy_matching(cost)
        assert len(set(assignment)) == 5
        assert total == pytest.approx(matching_cost(cost, assignment))

    def test_never_beats_hungarian(self):
        rng = np.random.default_rng(4)
        for trial in range(15):
            cost = rng.random((6, 6))
            _, optimal = min_cost_matching(cost)
            _, greedy = greedy_matching(cost)
            assert greedy >= optimal - 1e-12

    def test_rejects_tall(self):
        with pytest.raises(ValueError):
            greedy_matching(np.zeros((3, 2)))


class TestMatchingCost:
    def test_explicit(self):
        cost = np.array([[1.0, 2.0], [3.0, 4.0]])
        assert matching_cost(cost, [1, 0]) == pytest.approx(5.0)
