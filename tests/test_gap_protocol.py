"""End-to-end tests for the Gap Guarantee protocols (Theorems 4.2, 4.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GapProtocol,
    low_dim_entries,
    low_dimensional_gap_protocol,
    verify_gap_guarantee,
)
from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH, OneSidedGridLSH
from repro.metric import GridSpace, HammingSpace
from repro.protocol import Channel
from repro.workloads import noisy_replica_pair


def _hamming_setup(n=32, k=2, d=96, r1=2.0, r2=32.0, seed=0):
    rng = np.random.default_rng(seed)
    space = HammingSpace(d)
    workload = noisy_replica_pair(
        space, n=n, k=k, close_radius=int(r1), far_radius=r2 + 6, rng=rng
    )
    family = BitSamplingMLSH(space, w=float(d))
    params = family.derived_lsh_params(r1=r1, r2=r2)
    protocol = GapProtocol(space, family, params, n=n, k=k)
    return space, workload, protocol, r2


class TestVerifyGapGuarantee:
    def test_trivial_cases(self):
        space = HammingSpace(4)
        assert verify_gap_guarantee(space, [], [(0, 0, 0, 0)], 1.0)
        assert not verify_gap_guarantee(space, [(0, 0, 0, 0)], [], 1.0)

    def test_exact_containment(self):
        space = HammingSpace(4)
        points = [(0, 0, 0, 0), (1, 1, 1, 1)]
        assert verify_gap_guarantee(space, points, points, 0.0)

    def test_detects_violation(self):
        space = HammingSpace(4)
        assert not verify_gap_guarantee(
            space, [(1, 1, 1, 1)], [(0, 0, 0, 0)], 2.0
        )


class TestGapProtocolConstruction:
    def test_threshold_formula(self):
        space, _, protocol, _ = _hamming_setup()
        epsilon = 1.0 - protocol.rho
        expected = int(np.ceil(protocol.entries * (0.5 + epsilon / 6)))
        assert protocol.match_threshold == max(1, expected)

    def test_rejects_rho_one(self):
        space = HammingSpace(64)
        family = BitSamplingMLSH(space, w=64.0)
        # With alpha = 1/2, r2 = 2*r1 gives p1 = p2 (rho = 1), which the
        # LSHParams invariant already rejects.
        with pytest.raises(ValueError):
            family.derived_lsh_params(r1=8.0, r2=16.0)
        # A barely-separated pair constructs fine and yields rho < 1.
        params = family.derived_lsh_params(r1=8.0, r2=17.0)
        protocol = GapProtocol(space, family, params, n=16, k=1)
        assert protocol.rho < 1.0

    def test_per_entry_from_p2(self):
        space, _, protocol, _ = _hamming_setup(r2=32.0)
        # p2 = e^{-r2/(2w)} with w = d = 96 -> m = ceil(log(1/2)/log(p2)).
        assert protocol.per_entry >= 1

    def test_expected_differences_positive(self):
        _, _, protocol, _ = _hamming_setup()
        assert protocol.expected_entry_differences() > 0


class TestGapProtocolEndToEnd:
    def test_guarantee_holds(self):
        successes = 0
        holds = 0
        for seed in range(5):
            space, workload, protocol, r2 = _hamming_setup(seed=seed)
            result = protocol.run(
                workload.alice, workload.bob, PublicCoins(seed)
            )
            if not result.success:
                continue
            successes += 1
            if verify_gap_guarantee(space, workload.alice, result.bob_final, r2):
                holds += 1
        assert successes >= 4
        assert holds == successes

    def test_far_points_always_delivered(self):
        for seed in range(3):
            space, workload, protocol, r2 = _hamming_setup(seed=10 + seed)
            result = protocol.run(workload.alice, workload.bob, PublicCoins(seed))
            if not result.success:
                continue
            final = set(result.bob_final)
            for outlier in workload.alice_far_points:
                assert outlier in final

    def test_transmitted_subset_of_alice(self, coins):
        space, workload, protocol, _ = _hamming_setup(seed=20)
        result = protocol.run(workload.alice, workload.bob, coins)
        assert result.success
        assert set(result.transmitted) <= set(workload.alice)

    def test_bob_keeps_his_points(self, coins):
        space, workload, protocol, _ = _hamming_setup(seed=21)
        result = protocol.run(workload.alice, workload.bob, coins)
        assert set(workload.bob) <= set(result.bob_final)

    def test_four_rounds(self, coins):
        space, workload, protocol, _ = _hamming_setup(seed=22)
        channel = Channel()
        result = protocol.run(workload.alice, workload.bob, coins, channel)
        assert result.success
        assert channel.rounds == 4
        assert result.total_bits == channel.total_bits

    def test_identical_sets_transmit_little(self, coins, rng):
        """With S_A = S_B nothing is far; transmission should be empty."""
        space = HammingSpace(96)
        points = space.sample(rng, 24)
        family = BitSamplingMLSH(space, w=96.0)
        params = family.derived_lsh_params(r1=2.0, r2=32.0)
        protocol = GapProtocol(space, family, params, n=24, k=1)
        result = protocol.run(points, points, coins)
        assert result.success
        assert result.transmitted == []

    def test_all_far_transmits_all(self, coins, rng):
        """Disjoint random sets: every Alice point is far."""
        space = HammingSpace(96)
        alice = space.sample(rng, 8)
        bob = space.sample(rng, 8)
        family = BitSamplingMLSH(space, w=96.0)
        params = family.derived_lsh_params(r1=2.0, r2=32.0)
        protocol = GapProtocol(
            space, family, params, n=8, k=8, sos_size_multiplier=6.0
        )
        result = protocol.run(alice, bob, coins)
        assert result.success
        # Random 96-bit points are ~48 apart, all far.
        assert len(result.transmitted) == 8


class TestLowDimensionalGap:
    def test_entries_formula(self):
        assert low_dim_entries(100, 0.5) >= 2
        assert low_dim_entries(100, 0.01) <= low_dim_entries(100, 0.5)
        with pytest.raises(ValueError):
            low_dim_entries(100, 1.5)

    def test_construction(self):
        space = GridSpace(side=1024, dim=2, p=1.0)
        protocol = low_dimensional_gap_protocol(space, n=32, k=2, r1=4.0, r2=64.0)
        assert protocol.per_entry == 1
        assert protocol.match_threshold == 1
        assert isinstance(protocol.lsh, OneSidedGridLSH)

    def test_rejects_high_dimension(self):
        space = GridSpace(side=1024, dim=50, p=1.0)
        with pytest.raises(ValueError):
            low_dimensional_gap_protocol(space, n=32, k=2, r1=4.0, r2=64.0)

    def test_guarantee_holds(self):
        holds = 0
        runs = 0
        for seed in range(4):
            rng = np.random.default_rng(seed)
            space = GridSpace(side=2048, dim=2, p=1.0)
            workload = noisy_replica_pair(
                space, n=32, k=2, close_radius=4, far_radius=96, rng=rng
            )
            protocol = low_dimensional_gap_protocol(
                space, n=32, k=2, r1=4.0, r2=80.0
            )
            result = protocol.run(workload.alice, workload.bob, PublicCoins(seed))
            if not result.success:
                continue
            runs += 1
            if verify_gap_guarantee(space, workload.alice, result.bob_final, 80.0):
                holds += 1
        assert runs >= 3
        assert holds == runs

    def test_far_points_delivered(self, coins):
        rng = np.random.default_rng(33)
        space = GridSpace(side=2048, dim=2, p=1.0)
        workload = noisy_replica_pair(
            space, n=24, k=3, close_radius=4, far_radius=96, rng=rng
        )
        protocol = low_dimensional_gap_protocol(space, n=24, k=3, r1=4.0, r2=80.0)
        result = protocol.run(workload.alice, workload.bob, coins)
        assert result.success
        final = set(result.bob_final)
        for outlier in workload.alice_far_points:
            assert outlier in final
