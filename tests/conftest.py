"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.metric import GridSpace, HammingSpace


@pytest.fixture
def coins() -> PublicCoins:
    return PublicCoins(0xC0FFEE)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xFEED)


@pytest.fixture
def hamming_space() -> HammingSpace:
    return HammingSpace(32)


@pytest.fixture
def l1_space() -> GridSpace:
    return GridSpace(side=128, dim=4, p=1.0)


@pytest.fixture
def l2_space() -> GridSpace:
    return GridSpace(side=128, dim=4, p=2.0)
