"""The sweep subsystem: grid expansion, seeds, parallelism, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.analysis.stats import summarize, wilson_interval
from repro.experiments import (
    ScenarioRunner,
    ScenarioSpec,
    SweepRunner,
    SweepSpec,
    builtin_campaigns,
    render_sweep_report,
)
from repro.experiments.sweeps import with_trials

SEED = 7

#: Small and threshold-straddling: 16 difference keys over 16..48 cells.
TINY_AXES = {"cells": (16, 48), "q": (3, 4)}
TINY_BASE = {"n": 32, "differences": 8}


def tiny_sweep(trials: int = 2, axes=None) -> SweepSpec:
    return SweepSpec(
        name="tiny",
        protocol="iblt-load",
        axes=TINY_AXES if axes is None else axes,
        base_params=TINY_BASE,
        trials=trials,
    )


@pytest.fixture(scope="module")
def tiny_points():
    return SweepRunner(backend="numpy").run(tiny_sweep(trials=3), seed=SEED)


class TestSpec:
    def test_grid_is_cross_product_in_canonical_order(self):
        points = tiny_sweep().grid_points()
        assert points == [
            {"cells": 16, "q": 3},
            {"cells": 16, "q": 4},
            {"cells": 48, "q": 3},
            {"cells": 48, "q": 4},
        ]

    def test_axis_value_order_is_preserved(self):
        points = tiny_sweep(axes={"cells": (48, 16)}).grid_points()
        assert [p["cells"] for p in points] == [48, 16]

    def test_point_params_merge_and_override(self):
        sweep = tiny_sweep()
        params = sweep.point_params({"cells": 16, "q": 4, "n": 64})
        assert params == {"n": 64, "differences": 8, "cells": 16, "q": 4}

    def test_validation(self):
        with pytest.raises(KeyError):
            SweepSpec("x", "no-such-protocol", axes={"a": (1,)})
        with pytest.raises(ValueError):
            tiny_sweep(trials=0)
        with pytest.raises(ValueError):
            SweepSpec("x", "iblt-load", axes={})
        with pytest.raises(ValueError):
            SweepSpec("x", "iblt-load", axes={"cells": ()})
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_with_trials(self):
        assert with_trials(tiny_sweep(), 9).trials == 9
        assert tiny_sweep().trials == 2


class TestSeedDerivation:
    def test_distinct_points_and_trials_distinct_coins(self):
        """Every (grid point, trial) pair gets its own PublicCoins."""
        trials = tiny_sweep(trials=3).trial_specs(SEED)
        coins = [trial.spec.coins() for trial in trials]
        assert len(trials) == 4 * 3
        assert len({c.seed for c in coins}) == len(coins)
        seeds = [trial.spec.seed for trial in trials]
        assert len(set(seeds)) == len(seeds)

    def test_sweep_seed_changes_every_trial_seed(self):
        sweep = tiny_sweep()
        seeds_a = {t.spec.seed for t in sweep.trial_specs(1)}
        seeds_b = {t.spec.seed for t in sweep.trial_specs(2)}
        assert not seeds_a & seeds_b

    def test_axis_reordering_is_seed_invariant(self):
        """The grid mapping's insertion order must not matter at all."""
        forward = tiny_sweep(axes={"cells": (16, 48), "q": (3, 4)})
        reversed_axes = tiny_sweep(axes={"q": (3, 4), "cells": (16, 48)})
        assert forward.trial_specs(SEED) == reversed_axes.trial_specs(SEED)

    def test_trial_seed_uses_sorted_point_items(self):
        sweep = tiny_sweep()
        point = {"cells": 16, "q": 3}
        shuffled = {"q": 3, "cells": 16}
        assert sweep.trial_seed(SEED, point, 0) == sweep.trial_seed(SEED, shuffled, 0)
        assert sweep.trial_seed(SEED, point, 0) != sweep.trial_seed(SEED, point, 1)

    def test_trials_run_through_scenario_runner_identically(self, tiny_points):
        """A sweep trial is exactly a ScenarioRunner run of its spec."""
        first = tiny_points[0].results[0]
        again = ScenarioRunner(backend="numpy").run(first.spec)
        assert again.metrics == first.metrics


class TestRunner:
    def test_groups_by_point_in_grid_order(self, tiny_points):
        sweep = tiny_sweep(trials=3)
        assert [dict(p.point) for p in tiny_points] == sweep.grid_points()
        assert all(len(p.results) == 3 for p in tiny_points)

    def test_overload_is_an_outcome_not_an_error(self, tiny_points):
        """16 difference keys in ~16 cells is far over threshold."""
        by_point = {tuple(sorted(p.point.items())): p for p in tiny_points}
        overloaded = by_point[(("cells", 16), ("q", 4))]
        assert overloaded.successes < len(overloaded.results)

    def test_parallel_report_is_byte_identical_to_serial(self):
        sweep = tiny_sweep(trials=2)
        serial = SweepRunner(backend="numpy", jobs=1).run(sweep, seed=SEED)
        with SweepRunner(backend="numpy", jobs=2) as runner:
            parallel = runner.run(sweep, seed=SEED)
        assert render_sweep_report(sweep, parallel, seed=SEED) == render_sweep_report(
            sweep, serial, seed=SEED
        )

    def test_persistent_pool_survives_campaigns(self):
        """One pool serves consecutive campaigns and every chunking."""
        first = tiny_sweep(trials=2)
        second = tiny_sweep(trials=3)
        serial = SweepRunner(backend="numpy", jobs=1)
        with SweepRunner(
            backend="numpy", jobs=2, chunk_trials=3, pool="process"
        ) as runner:
            assert runner._pool is None  # lazy until the first parallel run
            results_first = runner.run(first, seed=SEED)
            pool = runner._pool
            assert pool is not None
            results_second = runner.run(second, seed=SEED)
            assert runner._pool is pool  # reused, not rebuilt
            for sweep, results in ((first, results_first), (second, results_second)):
                assert render_sweep_report(
                    sweep, results, seed=SEED
                ) == render_sweep_report(sweep, serial.run(sweep, seed=SEED), seed=SEED)
        assert runner._pool is None  # context exit closed it

    def test_chunk_sizes_cannot_change_reports(self):
        """Chunking is transport only: every chunk size, same bytes."""
        sweep = tiny_sweep(trials=2)
        baseline = render_sweep_report(
            sweep, SweepRunner(backend="numpy", jobs=1).run(sweep, seed=SEED), seed=SEED
        )
        for chunk in (1, 3, 100):
            with SweepRunner(backend="numpy", jobs=2, chunk_trials=chunk) as runner:
                report = render_sweep_report(
                    sweep, runner.run(sweep, seed=SEED), seed=SEED
                )
            assert report == baseline

    def test_chunk_trials_validated(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=2, chunk_trials=0)
        assert SweepRunner(jobs=2)._chunk_size(16) == 2
        assert SweepRunner(jobs=2, chunk_trials=5)._chunk_size(16) == 5
        assert SweepRunner(jobs=4)._chunk_size(1) == 1

    def test_close_is_idempotent(self):
        runner = SweepRunner(backend="numpy", jobs=2)
        runner.run(tiny_sweep(trials=2), seed=SEED)
        runner.close()
        runner.close()
        # and a closed runner can lazily re-open on the next run
        runner.run(tiny_sweep(trials=2), seed=SEED)
        runner.close()

    def test_backend_recorded(self, tiny_points):
        assert all(
            result.backend == "numpy"
            for point in tiny_points
            for result in point.results
        )


class TestReport:
    def test_schema_and_determinism(self, tiny_points):
        sweep = tiny_sweep(trials=3)
        first = render_sweep_report(sweep, tiny_points, seed=SEED)
        second = render_sweep_report(sweep, tiny_points, seed=SEED)
        assert first == second
        assert first.endswith("\n")
        document = json.loads(first)
        assert document["schema"] == "repro.sweeps/v1"
        assert document["campaign"] == "tiny"
        assert document["protocol"] == "iblt-load"
        assert document["seed"] == SEED
        assert document["trials_per_point"] == 3
        assert document["axes"] == {"cells": [16, 48], "q": [3, 4]}
        assert document["point_count"] == 4
        assert document["backends"] == ["numpy"]
        for entry in document["points"]:
            assert set(entry) == {
                "point", "params", "trials", "successes",
                "success_rate", "success_ci", "metrics",
            }

    def test_aggregates_match_analysis_stats(self, tiny_points):
        sweep = tiny_sweep(trials=3)
        document = json.loads(render_sweep_report(sweep, tiny_points, seed=SEED))
        for entry, point in zip(document["points"], tiny_points):
            successes = point.successes
            low, high = wilson_interval(successes, len(point.results))
            assert entry["successes"] == successes
            assert entry["success_rate"] == round(successes / len(point.results), 6)
            assert entry["success_ci"] == [round(low, 6), round(high, 6)]
            bits = summarize([r.metrics["bits"] for r in point.results])
            assert entry["metrics"]["bits"]["mean"] == round(bits.mean, 6)
            assert entry["metrics"]["bits"]["std"] == round(bits.std, 6)
            # Booleans (success) aggregate as a rate, never as a Summary.
            assert "success" not in entry["metrics"]


class TestBuiltinCampaigns:
    def test_all_eight_exist(self):
        campaigns = builtin_campaigns()
        assert set(campaigns) == {
            "iblt-threshold",
            "gap-ratio",
            "emd-levels",
            "emd-branching",
            "fault-rate",
            "multiparty-parties",
            "store-churn",
            "churn-topology",
        }
        for name, campaign in campaigns.items():
            assert campaign.name == name
            assert campaign.trials >= 1
            assert campaign.grid_points()

    def test_gap_ratio_derives_dependent_params(self):
        campaign = builtin_campaigns()["gap-ratio"]
        params = campaign.point_params({"ratio": 8})
        assert params["r2"] == params["r1"] * 8
        assert params["far_radius"] > params["r2"]
        assert "ratio" not in params

    def test_emd_levels_axis_controls_level_count(self):
        """d2 is exactly the level-count knob (t = ceil(log2 d2) + 1)."""
        campaign = builtin_campaigns()["emd-levels"]
        trial = campaign.trial_specs(SEED)[0]
        assert trial.spec.params["d2"] == 8
        assert trial.spec.params["d1"] == 1

    def test_iblt_threshold_straddles_the_threshold(self):
        campaign = builtin_campaigns()["iblt-threshold"]
        loads = sorted(
            2 * campaign.base_params["differences"] / point["cells"]
            for point in campaign.grid_points()
        )
        assert loads[0] < 0.6 < 0.82 < loads[-1]

    def test_campaign_trial_is_a_plain_scenario(self):
        """Campaign trials stay runnable outside the sweep machinery."""
        campaign = builtin_campaigns()["iblt-threshold"]
        trial = campaign.trial_specs(SEED)[0]
        result = ScenarioRunner(backend="numpy").run(trial.spec)
        assert isinstance(trial.spec, ScenarioSpec)
        assert result.metrics["true_differences"] == 64

    def test_emd_branching_rides_the_scaled_wrapper(self):
        """The branching-factor axis drives the interval-scaled protocol:
        the interval count must shrink as the ratio grows."""
        campaign = builtin_campaigns()["emd-branching"]
        assert campaign.base_params["scaled"] is True
        trials = {
            trial.point["ratio"]: trial
            for trial in campaign.trial_specs(SEED)
            if trial.trial_index == 0
        }
        intervals = {}
        for ratio in (2, 8):
            result = ScenarioRunner(backend="numpy").run(trials[ratio].spec)
            assert result.success
            intervals[ratio] = result.metrics["intervals"]
        assert intervals[2] > intervals[8]

    def test_multiparty_campaign_cost_grows_with_parties(self):
        campaign = builtin_campaigns()["multiparty-parties"]
        trials = {
            trial.point["parties"]: trial
            for trial in campaign.trial_specs(SEED)
            if trial.trial_index == 0
        }
        bits = {}
        for parties in (2, 4):
            result = ScenarioRunner(backend="numpy").run(trials[parties].spec)
            assert result.success
            assert result.metrics["parties"] == parties
            bits[parties] = result.metrics["bits"]
        assert bits[4] > bits[2]
