"""Tests for the key builders (Algorithm 1 prefixes, Gap batch keys)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import PublicCoins
from repro.lsh import (
    BatchKeyBuilder,
    BitSamplingMLSH,
    PrefixKeyBuilder,
    key_bits_for,
)
from repro.metric import HammingSpace


@pytest.fixture
def family():
    return BitSamplingMLSH(HammingSpace(16), w=32)


class TestKeyBitsFor:
    def test_grows_with_n(self):
        assert key_bits_for(10) <= key_bits_for(10_000)

    def test_bounds(self):
        assert 16 <= key_bits_for(1) <= 61
        assert key_bits_for(1 << 40) == 61

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            key_bits_for(0)


class TestPrefixKeyBuilder:
    def _builder(self, coins, family, lengths=(1, 2, 4, 8)):
        batch = family.sample_batch(coins, "b", max(lengths))
        return PrefixKeyBuilder(batch, lengths, coins, "k", key_bits=32)

    def test_shape(self, coins, family, rng):
        builder = self._builder(coins, family)
        points = HammingSpace(16).sample(rng, 5)
        keys = builder.keys_for(points)
        assert keys.shape == (5, 4)

    def test_empty_points(self, coins, family):
        builder = self._builder(coins, family)
        assert builder.keys_for([]).shape == (0, 4)

    def test_shared_between_parties(self, family, rng):
        points = HammingSpace(16).sample(rng, 4)
        batch_a = family.sample_batch(PublicCoins(1), "s", 8)
        builder_a = PrefixKeyBuilder(batch_a, (2, 8), PublicCoins(1), "k", 32)
        batch_b = family.sample_batch(PublicCoins(1), "s", 8)
        builder_b = PrefixKeyBuilder(batch_b, (2, 8), PublicCoins(1), "k", 32)
        assert (builder_a.keys_for(points) == builder_b.keys_for(points)).all()

    def test_identical_points_identical_keys(self, coins, family):
        builder = self._builder(coins, family)
        point = (0, 1) * 8
        keys = builder.keys_for([point, point])
        assert (keys[0] == keys[1]).all()

    def test_matches_from_scratch_hash(self, coins, family, rng):
        """Level keys must equal hashing the explicit MLSH prefix."""
        lengths = (1, 3, 7)
        batch = family.sample_batch(coins, "m", 7)
        builder = PrefixKeyBuilder(batch, lengths, coins, "k2", key_bits=40)
        points = HammingSpace(16).sample(rng, 3)
        values = batch.evaluate(points)
        keys = builder.keys_for(points)
        for row in range(3):
            for level, length in enumerate(lengths):
                expected = builder.hasher.hash_prefix(values[row].tolist(), length)
                assert keys[row, level] == expected

    def test_rejects_decreasing_lengths(self, coins, family):
        batch = family.sample_batch(coins, "r", 8)
        with pytest.raises(ValueError):
            PrefixKeyBuilder(batch, (4, 2), coins, "k", 32)

    def test_rejects_too_long_prefix(self, coins, family):
        batch = family.sample_batch(coins, "r2", 4)
        with pytest.raises(ValueError):
            PrefixKeyBuilder(batch, (2, 8), coins, "k", 32)

    def test_rejects_empty_lengths(self, coins, family):
        batch = family.sample_batch(coins, "r3", 4)
        with pytest.raises(ValueError):
            PrefixKeyBuilder(batch, (), coins, "k", 32)


class TestBatchKeyBuilder:
    def _builder(self, coins, family, entries=4, per_entry=3):
        batch = family.sample_batch(coins, "g", entries * per_entry)
        return BatchKeyBuilder(
            batch, entries=entries, per_entry=per_entry, coins=coins,
            label="gk", key_bits=32,
        )

    def test_key_length(self, coins, family, rng):
        builder = self._builder(coins, family)
        keys = builder.keys_for(HammingSpace(16).sample(rng, 6))
        assert len(keys) == 6
        assert all(len(key) == 4 for key in keys)

    def test_empty(self, coins, family):
        assert self._builder(coins, family).keys_for([]) == []

    def test_shared_between_parties(self, family, rng):
        points = HammingSpace(16).sample(rng, 4)

        def build(seed):
            coins = PublicCoins(seed)
            batch = family.sample_batch(coins, "g", 12)
            return BatchKeyBuilder(
                batch, entries=4, per_entry=3, coins=coins, label="gk", key_bits=32
            ).keys_for(points)

        assert build(42) == build(42)

    def test_identical_points_full_match(self, coins, family):
        builder = self._builder(coins, family)
        point = (1, 0) * 8
        keys = builder.keys_for([point, point])
        assert BatchKeyBuilder.matches(keys[0], keys[1]) == 4

    def test_matches_counts(self):
        assert BatchKeyBuilder.matches((1, 2, 3), (1, 9, 3)) == 2
        assert BatchKeyBuilder.matches((1, 2), (3, 4)) == 0

    def test_matches_length_check(self):
        with pytest.raises(ValueError):
            BatchKeyBuilder.matches((1, 2), (1, 2, 3))

    def test_batch_size_must_factor(self, coins, family):
        batch = family.sample_batch(coins, "f", 10)
        with pytest.raises(ValueError):
            BatchKeyBuilder(
                batch, entries=4, per_entry=3, coins=coins, label="x", key_bits=32
            )

    def test_best_matches_matches_scalar(self, rng):
        """The vectorised max-agreement must equal the scalar matches loop,
        including across chunk boundaries."""
        keys = rng.integers(0, 16, size=(10, 5)).astype(np.uint64)
        candidates = rng.integers(0, 16, size=(7, 5)).astype(np.uint64)
        best = BatchKeyBuilder.best_matches(keys, candidates, chunk=4)
        for row, key in enumerate(keys.tolist()):
            expected = max(
                BatchKeyBuilder.matches(key, candidate)
                for candidate in candidates.tolist()
            )
            assert best[row] == expected

    def test_best_matches_no_candidates(self):
        keys = np.ones((3, 4), dtype=np.uint64)
        empty = np.empty((0, 4), dtype=np.uint64)
        assert BatchKeyBuilder.best_matches(keys, empty).tolist() == [0, 0, 0]

    def test_best_matches_shape_check(self):
        with pytest.raises(ValueError):
            BatchKeyBuilder.best_matches(
                np.ones((2, 4), dtype=np.uint64), np.ones((2, 3), dtype=np.uint64)
            )

    def test_key_matrix_matches_tuples(self, coins, family, rng):
        builder = self._builder(coins, family)
        points = HammingSpace(16).sample(rng, 8)
        matrix = builder.key_matrix_for(points)
        assert matrix.dtype == np.uint64
        assert [tuple(row) for row in matrix.tolist()] == builder.keys_for(points)

    def test_far_points_rarely_match(self, coins, rng):
        space = HammingSpace(64)
        family = BitSamplingMLSH(space, w=64)
        batch = family.sample_batch(coins, "far", 40)
        builder = BatchKeyBuilder(
            batch, entries=10, per_entry=4, coins=coins, label="fk", key_bits=32
        )
        zero = tuple([0] * 64)
        far = tuple([1] * 64)
        keys = builder.keys_for([zero, far])
        # Each entry matches iff all 4 sampled bits agree; distance = d so
        # entries should essentially never match.
        assert BatchKeyBuilder.matches(keys[0], keys[1]) <= 1


class TestPrefixKeyBuilderScalarParity:
    """The unified Mersenne-61 key stream, pinned the same way the IBLT
    backends are: the vectorised ``keys_for`` matrix must be bit-identical
    to a scalar per-point :class:`~repro.hashing.PrefixHasher` reference,
    whichever backend the process default selects."""

    LENGTHS = (1, 3, 4, 9)

    def _builder_and_points(self, key_bits=61):
        space = HammingSpace(32)
        family = BitSamplingMLSH(space, w=64.0)
        coins = PublicCoins(123)
        batch = family.sample_batch(coins, "parity", max(self.LENGTHS))
        builder = PrefixKeyBuilder(
            batch, self.LENGTHS, coins, "parity-keys", key_bits=key_bits
        )
        points = space.sample(np.random.default_rng(5), 20)
        return builder, points

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_keys_match_scalar_reference(self, backend, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", backend)
        builder, points = self._builder_and_points()
        keys = builder.keys_for(points)
        assert keys.dtype == np.uint64
        values = builder.batch.evaluate(points)
        for row in range(len(points)):
            expected = builder.hasher.prefix_digests(
                [int(v) for v in values[row]], list(self.LENGTHS)
            )
            assert keys[row].tolist() == expected

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_folded_widths_match_scalar_reference(self, backend, monkeypatch):
        """Key widths below 61 fold identically on both paths."""
        monkeypatch.setenv("REPRO_BACKEND", backend)
        builder, points = self._builder_and_points(key_bits=28)
        keys = builder.keys_for(points)
        assert int(keys.max()) < (1 << 28)
        values = builder.batch.evaluate(points)
        for row in range(0, len(points), 5):
            expected = builder.hasher.prefix_digests(
                [int(v) for v in values[row]], list(self.LENGTHS)
            )
            assert keys[row].tolist() == expected
