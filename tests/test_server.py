"""The reconciliation service end to end: client, server, faulty links.

Everything here runs the *real* client/server stack over an in-memory
framed pipe (:func:`repro.server.memory_pipe`) — the same code paths the
``serve``/``client`` CLI exercises over TCP — inside ``asyncio.run``
with a hard outer timeout, so a protocol bug can fail a test but never
hang the suite.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.errors import DecodeError, MalformedPayloadError
from repro.hashing import derive_seed
from repro.protocol.wire import (
    HEADER_LEN,
    Frame,
    MessageType,
    decode_body,
    encode_frame,
)
from repro.server import (
    ConnectionClosedError,
    NetworkConfig,
    ReconcileClient,
    ReconcileServer,
    SessionConfig,
    SimulatedNetwork,
    memory_pipe,
    render_session_reports,
)
from repro.server.network import SessionLink
from repro.server.session import parse_json_payload

SUITE_TIMEOUT = 60.0


def run_service(configs, network=None, timeout=15.0, store=None):
    """Run sessions against a live server over a memory pipe."""

    async def run():
        client_conn, server_conn = memory_pipe()
        server = ReconcileServer(store=store)
        server_task = asyncio.ensure_future(server.serve_connection(server_conn))
        client = ReconcileClient(client_conn, network=network, timeout=timeout)
        client.start()
        try:
            reports = await client.run_sessions(configs)
        finally:
            await client.aclose()
            server_task.cancel()
            try:
                await server_task
            except asyncio.CancelledError:
                pass
        return reports, server

    return asyncio.run(asyncio.wait_for(run(), SUITE_TIMEOUT))


def _configs(n, seed=7, **overrides):
    fields = dict(dim=48, n_shared=64, delta=10, delta_bound=6, max_attempts=8)
    fields.update(overrides)
    return [
        SessionConfig(session_id=sid, seed=seed, **fields)
        for sid in range(1, n + 1)
    ]


class TestCleanService:
    def test_sessions_reconcile(self):
        reports, server = run_service(_configs(4))
        assert len(reports) == 4
        for report in reports:
            assert report.success and report.union_ok
            assert report.rerequests == 0
            assert report.wire.frames_lost == 0
        assert server.sessions_opened == 4
        assert server.sessions_closed == 4

    def test_clean_transcript_matches_in_process_shape(self):
        """A clean exact session's analytical transcript has exactly the
        in-process shape: Bob's IBLT, then Alice's difference push."""
        (report,), _ = run_service(_configs(1, protocol="exact", delta_bound=16))
        assert report.success and report.union_ok
        assert report.attempts == 1
        assert report.escalations == 0
        assert sorted(report.by_label) == ["alice-only-points", "iblt"]
        assert report.transcript_rounds == 2
        assert report.fallback_bound is None

    def test_wire_covers_transcript(self):
        """Physical wire bytes must dominate the analytical transcript:
        framing is overhead on top of the measured payload bits."""
        reports, _ = run_service(_configs(3))
        for report in reports:
            assert 8 * report.wire.wire_bytes >= report.transcript_bits
            assert report.wire.framing_bytes > 0
            assert (
                report.wire.wire_bytes
                == report.wire.payload_bytes + report.wire.framing_bytes
            )


def _faulty_network(seed=7):
    return SimulatedNetwork(
        NetworkConfig(
            seed=derive_seed(seed, "test-service"),
            loss_rate=0.15,
            corrupt_rate=0.1,
            duplicate_rate=0.1,
            jitter_ms=0.4,
        )
    )


class TestFaultyService:
    def test_all_sessions_survive_faults(self):
        reports, _ = run_service(_configs(5), network=_faulty_network())
        assert all(r.success and r.union_ok for r in reports)
        stats = [r.wire for r in reports]
        # At this fault rate the link must actually have misbehaved.
        assert sum(s.frames_lost + s.frames_corrupted for s in stats) > 0
        assert sum(r.rerequests for r in reports) > 0

    def test_reports_deterministic_across_runs(self):
        """Two same-seed runs render byte-identical documents — the
        invariant CI's server-smoke gate checks with ``cmp``."""
        first, _ = run_service(_configs(4), network=_faulty_network())
        second, _ = run_service(_configs(4), network=_faulty_network())
        assert render_session_reports(first, seed=7) == render_session_reports(
            second, seed=7
        )

    def test_breaker_trips_into_strata_fallback(self):
        """An undersized bound with no escalation room must trip the
        breaker; the strata round trip then measures a workable bound."""
        configs = _configs(
            1, delta=32, delta_bound=1, max_escalations=1, max_attempts=10
        )
        (report,), _ = run_service(configs)
        assert report.breaker_tripped
        assert report.fallback_bound is not None and report.fallback_bound >= 4
        assert report.success and report.union_ok
        assert "strata-sketch" in report.by_label
        assert "strata-estimate" in report.by_label

    def test_exact_protocol_never_retries(self):
        (report,), _ = run_service(
            _configs(1, protocol="exact", delta=32, delta_bound=1)
        )
        assert not report.success  # bound 1 cannot hold 32 differences
        assert report.attempts == 1
        assert report.escalations == 0
        assert not report.breaker_tripped


def _reordering_network(seed=7):
    return SimulatedNetwork(
        NetworkConfig(
            seed=derive_seed(seed, "test-reorder"),
            reorder_rate=0.35,
            duplicate_rate=0.1,
            jitter_ms=0.4,
        )
    )


class TestReordering:
    def test_out_of_order_delivery_tolerated(self):
        """Seq-dedup on both ends plus the stateless request/response
        design tolerate genuinely out-of-order frame delivery: late
        stale copies arrive after newer frames and every session still
        reconciles."""
        reports, server = run_service(_configs(4), network=_reordering_network())
        assert all(r.success and r.union_ok for r in reports)
        assert sum(r.wire.frames_reordered for r in reports) > 0
        assert server.sessions_closed == 4

    def test_reordered_reports_deterministic(self):
        first, _ = run_service(_configs(4), network=_reordering_network())
        second, _ = run_service(_configs(4), network=_reordering_network())
        assert render_session_reports(first, seed=7) == render_session_reports(
            second, seed=7
        )

    def test_latency_percentiles_surfaced(self):
        reports, _ = run_service(_configs(3), network=_reordering_network())
        document = json.loads(render_session_reports(reports, seed=7))
        aggregate = document["aggregate"]
        assert aggregate["frames_reordered"] > 0
        assert 0.0 < aggregate["sim_latency_p50_ms"] <= aggregate["sim_latency_p99_ms"]
        for entry in document["sessions"]:
            assert 0.0 < entry["sim_latency_p50_ms"] <= entry["sim_latency_p99_ms"]

    def test_no_network_percentiles_are_zero(self):
        """Without a simulated link there are no latency draws: the
        percentiles report 0.0 rather than failing on an empty sample."""
        (report,), _ = run_service(_configs(1))
        assert report.wire.sim_latency_samples == []
        assert report.wire.latency_percentile(0.5) == 0.0
        assert report.wire.to_dict()["sim_latency_p50_ms"] == 0.0

    def test_percentile_is_nearest_rank(self):
        from repro.server import SessionWireStats

        stats = SessionWireStats()
        for value in (5.0, 1.0, 3.0, 2.0, 4.0):
            stats.record_latency(value)
        assert stats.latency_percentile(0.50) == 3.0
        assert stats.latency_percentile(0.99) == 5.0
        assert stats.latency_percentile(0.20) == 1.0


class TestStoreBackedServer:
    def _store(self):
        from repro.store import SketchStore, StoreConfig

        return SketchStore(StoreConfig(seed=7, shards=4, capacity=16))

    def test_wire_parity_with_stateless(self):
        """Acceptance: the store-backed server is byte-identical on the
        wire to the stateless one — for the same seed and workloads the
        rendered reports (which cover every wire counter) match, cold
        *and* warm."""
        stateless, _ = run_service(_configs(4))
        baseline = render_session_reports(stateless, seed=7)

        store = self._store()
        cold, _ = run_service(_configs(4), store=store)
        assert render_session_reports(cold, seed=7) == baseline
        assert store.stats.misses > 0

        hashed = store.stats.keys_hashed
        warm, _ = run_service(_configs(4), store=store)
        assert render_session_reports(warm, seed=7) == baseline
        # The repeat run served every sketch warm: cache hits happened
        # and not a single fresh Mersenne hash pass was paid.
        assert store.stats.hits > 0
        assert store.stats.rebuilds_avoided > 0
        assert store.stats.keys_hashed == hashed

    def test_faulty_link_parity(self):
        stateless, _ = run_service(_configs(3), network=_faulty_network())
        store = self._store()
        backed, _ = run_service(_configs(3), network=_faulty_network(), store=store)
        assert render_session_reports(backed, seed=7) == render_session_reports(
            stateless, seed=7
        )

    def test_merged_push_diverges_to_stateless_build(self):
        """After PUSH_POINTS merges Alice's difference the session no
        longer matches the store's derived set; later sketches must be
        built from the merged points while the store entry stays
        derived (ready for the next session)."""
        store = self._store()
        reports, _ = run_service(_configs(2), store=store)
        assert all(r.success and r.union_ok for r in reports)
        for config in _configs(2):
            key = config.store_key()
            assert store.contains(key)
            _, bob = config.workload()
            assert len(store.keys_of(key)) == len(bob)


class TestRenderedReport:
    def test_schema_and_aggregate(self):
        reports, _ = run_service(_configs(2), network=_faulty_network())
        document = json.loads(render_session_reports(reports, seed=7))
        assert document["schema"] == "repro.recon-service/v1"
        assert document["session_count"] == 2
        assert [s["session_id"] for s in document["sessions"]] == [1, 2]
        aggregate = document["aggregate"]
        assert aggregate["all_reconciled"] is True
        assert aggregate["wire_covers_transcript"] is True
        assert (
            aggregate["framing_bytes"]
            == aggregate["wire_bytes"] - aggregate["payload_bytes"]
        )


# -- raw-frame conversations with a live server ---------------------------


class _RawPeer:
    """Drive a live server with hand-built frames (a misbehaving client)."""

    def __init__(self):
        self.client_conn, self.server_conn = memory_pipe()
        self.server = ReconcileServer()
        self.server_task = asyncio.ensure_future(
            self.server.serve_connection(self.server_conn)
        )
        self.seq = 0

    def frame(self, msg_type, payload, session_id=1, label="x", seq=None):
        if seq is None:
            seq = self.seq
            self.seq += 1
        return encode_frame(
            Frame(
                msg_type=msg_type,
                session_id=session_id,
                seq=seq,
                sender="alice",
                label=label,
                payload=payload,
                payload_bits=8 * len(payload),
            )
        )

    def hello(self, config):
        return self.frame(
            MessageType.HELLO, config.to_json(), config.session_id, "hello"
        )

    async def send(self, raw):
        await self.client_conn.write_raw(raw)

    async def recv(self):
        header, raw = await asyncio.wait_for(self.client_conn.read_raw(), 10.0)
        return decode_body(header, raw[HEADER_LEN:])

    async def finish(self):
        self.client_conn.close()
        try:
            await asyncio.wait_for(self.server_task, 10.0)
        except asyncio.TimeoutError:  # pragma: no cover - the hang branch
            self.server_task.cancel()
            raise AssertionError("server connection never terminated")


def _raw(test_coro):
    """Run a raw-peer conversation under the suite timeout."""

    async def run():
        peer = _RawPeer()
        try:
            await test_coro(peer)
        finally:
            await peer.finish()

    asyncio.run(asyncio.wait_for(run(), SUITE_TIMEOUT))


class TestServerRobustness:
    def test_pure_garbage_closes_connection(self):
        """An unframeable stream ends the connection — typed close, no hang."""

        async def conversation(peer):
            rng = random.Random(0xDEAD)
            await peer.send(bytes(rng.randrange(256) for _ in range(512)))
            with pytest.raises((ConnectionClosedError, DecodeError)):
                while True:
                    await peer.recv()

        _raw(conversation)

    def test_damaged_hello_yields_decode_error_frame(self):
        async def conversation(peer):
            raw = bytearray(peer.hello(SessionConfig(session_id=1, seed=7)))
            raw[HEADER_LEN + 10] ^= 0x20  # chew the JSON payload
            await peer.send(bytes(raw))
            reply = await peer.recv()
            assert reply.msg_type is MessageType.ERROR
            assert parse_json_payload(reply.payload)["code"] == "decode"

        _raw(conversation)

    def test_hello_session_id_mismatch_rejected(self):
        async def conversation(peer):
            config = SessionConfig(session_id=2, seed=7)
            await peer.send(
                peer.frame(MessageType.HELLO, config.to_json(), 1, "hello")
            )
            reply = await peer.recv()
            assert reply.msg_type is MessageType.ERROR
            assert parse_json_payload(reply.payload)["code"] == "decode"

        _raw(conversation)

    def test_unknown_session_gets_typed_error(self):
        async def conversation(peer):
            await peer.send(
                peer.frame(
                    MessageType.REQ_SKETCH, b'{"attempt":1,"bound":4}', 99,
                    "req-sketch",
                )
            )
            reply = await peer.recv()
            assert reply.msg_type is MessageType.ERROR
            assert reply.session_id == 99
            assert parse_json_payload(reply.payload)["code"] == "unknown-session"

        _raw(conversation)

    def test_duplicate_delivery_answered_once(self):
        """Same sequence number twice → one ACK; the stream stays in sync."""

        async def conversation(peer):
            hello = peer.hello(SessionConfig(session_id=1, seed=7))
            await peer.send(hello)
            await peer.send(hello)  # duplicated delivery, same seq
            await peer.send(
                peer.frame(
                    MessageType.REQ_SKETCH, b'{"attempt":1,"bound":4}', 1,
                    "req-sketch",
                )
            )
            first = await peer.recv()
            second = await peer.recv()
            assert first.msg_type is MessageType.HELLO_ACK
            assert second.msg_type is MessageType.SKETCH  # not a second ACK

        _raw(conversation)

    def test_retransmitted_hello_reacked(self):
        """A *new-seq* HELLO for a live session re-ACKs idempotently."""

        async def conversation(peer):
            config = SessionConfig(session_id=1, seed=7)
            await peer.send(peer.hello(config))
            await peer.send(peer.hello(config))  # fresh seq, same session
            assert (await peer.recv()).msg_type is MessageType.HELLO_ACK
            assert (await peer.recv()).msg_type is MessageType.HELLO_ACK

        _raw(conversation)

    def test_bye_closes_session(self):
        async def conversation(peer):
            await peer.send(peer.hello(SessionConfig(session_id=1, seed=7)))
            assert (await peer.recv()).msg_type is MessageType.HELLO_ACK
            await peer.send(peer.frame(MessageType.BYE, b"", 1, "bye"))
            await peer.send(
                peer.frame(
                    MessageType.REQ_SKETCH, b'{"attempt":1,"bound":4}', 1,
                    "req-sketch",
                )
            )
            reply = await peer.recv()
            assert parse_json_payload(reply.payload)["code"] == "unknown-session"

        _raw(conversation)

    def test_hostile_bound_rejected_before_allocation(self):
        async def conversation(peer):
            await peer.send(peer.hello(SessionConfig(session_id=1, seed=7)))
            assert (await peer.recv()).msg_type is MessageType.HELLO_ACK
            for payload in (
                b'{"attempt":1,"bound":1099511627776}',  # over MAX_BOUND
                b'{"attempt":1,"bound":0}',
                b'{"attempt":0,"bound":4}',
                b'{"attempt":true,"bound":4}',  # bools are not attempts
                b'{"bound":4}',
                b"not json at all",
            ):
                await peer.send(
                    peer.frame(MessageType.REQ_SKETCH, payload, 1, "req-sketch")
                )
                reply = await peer.recv()
                assert reply.msg_type is MessageType.ERROR
                assert parse_json_payload(reply.payload)["code"] == "decode"

        _raw(conversation)

    def test_fuzzed_frames_never_crash_live_session(self):
        """Seeded damage to in-session frames: every delivery is answered
        with a typed ERROR (or ignored as duplicate), never a crash."""

        async def conversation(peer):
            await peer.send(peer.hello(SessionConfig(session_id=1, seed=7)))
            assert (await peer.recv()).msg_type is MessageType.HELLO_ACK
            rng = random.Random(0xF1172)
            for _ in range(24):
                raw = bytearray(
                    peer.frame(
                        MessageType.REQ_STRATA,
                        bytes(rng.randrange(256) for _ in range(40)),
                        1,
                        "strata-sketch",
                    )
                )
                body_bits = 8 * (len(raw) - HEADER_LEN)
                position = rng.randrange(body_bits)
                raw[HEADER_LEN + position // 8] ^= 1 << (position % 8)
                await peer.send(bytes(raw))
                reply = await peer.recv()
                assert reply.msg_type is MessageType.ERROR
                assert parse_json_payload(reply.payload)["code"] == "decode"
            # The session survived all of it and still answers.
            await peer.send(
                peer.frame(
                    MessageType.REQ_SKETCH, b'{"attempt":1,"bound":4}', 1,
                    "req-sketch",
                )
            )
            assert (await peer.recv()).msg_type is MessageType.SKETCH

        _raw(conversation)


class TestSessionConfig:
    def test_json_roundtrip(self):
        config = SessionConfig(session_id=3, seed=11, delta=4)
        assert SessionConfig.from_payload(config.to_json()) == config

    def test_workload_is_shared_and_split(self):
        config = SessionConfig(session_id=1, seed=7, dim=32, n_shared=50, delta=8)
        alice, bob = config.workload()
        assert len(alice) == 54 and len(bob) == 54
        difference = set(alice) ^ set(bob)
        assert 0 < len(difference) <= 8

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda obj: obj.pop("seed"),
            lambda obj: obj.update(extra=1),
            lambda obj: obj.update(protocol="quantum"),
            lambda obj: obj.update(dim=0),
            lambda obj: obj.update(seed=True),
            lambda obj: obj.update(seed="7"),
        ],
        ids=["missing", "extra", "bad-protocol", "bad-dim", "bool", "string"],
    )
    def test_malformed_hello_rejected(self, mutate):
        obj = json.loads(SessionConfig(session_id=1, seed=7).to_json())
        mutate(obj)
        with pytest.raises(MalformedPayloadError):
            SessionConfig.from_payload(json.dumps(obj).encode())

    def test_attempt_coins_distinct(self):
        config = SessionConfig(session_id=1, seed=7)
        first = config.attempt_coins(1)
        assert first.child_seed("x") == config.coins().child_seed("x")
        assert config.attempt_coins(2).child_seed("x") != first.child_seed("x")
        assert (
            config.attempt_coins(3).child_seed("x")
            != config.attempt_coins(2).child_seed("x")
        )


class TestNetworkModel:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            NetworkConfig(seed=1, loss_rate=-0.1)
        with pytest.raises(ValueError):
            NetworkConfig(seed=1, loss_rate=0.7, corrupt_rate=0.5)
        with pytest.raises(ValueError):
            NetworkConfig(seed=1, jitter_ms=-1.0)

    def test_decisions_depend_only_on_coordinates(self):
        """The fault plan is a pure function of (seed, session, direction,
        seq) — scheduling order cannot change what the link does."""
        config = NetworkConfig(
            seed=42, loss_rate=0.3, corrupt_rate=0.3, duplicate_rate=0.3,
            jitter_ms=1.0,
        )
        raw = encode_frame(
            Frame(
                msg_type=MessageType.SKETCH,
                session_id=5,
                seq=0,
                sender="bob",
                label="iblt",
                payload=b"payload-bytes-here",
                payload_bits=144,
            )
        )
        from repro.protocol.wire import decode_header

        header = decode_header(raw[:HEADER_LEN])

        def plan(order):
            link = SessionLink(config, 5)
            decisions = [
                link.apply("s2c", seq, header, raw) for seq in order
            ]
            return {
                seq: (d.lost, d.corrupted, d.duplicated, d.latency_ms)
                for seq, d in zip(order, decisions)
            }

        forward = plan(list(range(12)))
        shuffled_order = list(range(12))
        random.Random(3).shuffle(shuffled_order)
        assert plan(shuffled_order) == forward

    def test_damage_is_length_preserving_and_detected(self):
        """Loss and corruption keep the frame parseable (headers intact,
        lengths unchanged) but always fail the payload CRC."""
        config = NetworkConfig(
            seed=9, loss_rate=0.5, corrupt_rate=0.5, jitter_ms=0.0
        )
        link = SessionLink(config, 1)
        frame = Frame(
            msg_type=MessageType.SKETCH,
            session_id=1,
            seq=0,
            sender="bob",
            label="iblt",
            payload=b"some sketch payload",
            payload_bits=152,
        )
        raw = encode_frame(frame)
        from repro.protocol.wire import decode_frame, decode_header

        header = decode_header(raw[:HEADER_LEN])
        damaged_seen = 0
        for seq in range(32):
            decision = link.apply("s2c", seq, header, raw)
            for delivery in decision.deliveries:
                assert len(delivery) == len(raw)
                decoded, _ = decode_frame(delivery)  # header always intact
                assert decoded.session_id == 1
                if decision.lost or decision.corrupted:
                    damaged_seen += 1
                    with pytest.raises(MalformedPayloadError):
                        decoded.verify_payload()
        assert damaged_seen > 0
