"""Tests for the counting (multiset) IBLT."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import PublicCoins
from repro.iblt import MultisetIBLT
from repro.protocol import BitReader, multiset_payload, read_multiset_cells


def _table(coins, cells=120, q=4, key_bits=30, label="m"):
    return MultisetIBLT(coins, label, cells=cells, q=q, key_bits=key_bits)


class TestBasics:
    def test_insert_delete_cancels(self, coins):
        table = _table(coins)
        table.insert(5, 3)
        table.delete(5, 3)
        assert table.is_empty()

    def test_zero_multiplicity_noop(self, coins):
        table = _table(coins)
        table.insert(5, 0)
        assert table.is_empty()

    def test_key_range(self, coins):
        table = _table(coins, key_bits=8)
        with pytest.raises(ValueError):
            table.insert(256)

    def test_copy(self, coins):
        table = _table(coins)
        table.insert(9)
        clone = table.copy()
        clone.delete(9)
        assert clone.is_empty() and not table.is_empty()


class TestDecode:
    def test_multiplicities_recovered(self, coins):
        table = _table(coins)
        table.insert(10, 3)
        table.insert(20, 1)
        table.delete(30, 2)
        result = table.decode()
        assert result.success
        assert result.multiplicities == {10: 3, 20: 1, 30: -2}
        assert result.positive == {10: 3, 20: 1}
        assert result.negative == {30: 2}
        assert result.total_difference == 6

    def test_mixed_sign_same_key_nets_out(self, coins):
        table = _table(coins)
        table.insert(7, 5)
        table.delete(7, 2)
        result = table.decode()
        assert result.success
        assert result.multiplicities == {7: 3}

    def test_full_cancellation(self, coins):
        table = _table(coins)
        table.insert(7, 5)
        table.delete(7, 5)
        result = table.decode()
        assert result.success
        assert result.multiplicities == {}

    def test_decode_destructive(self, coins):
        table = _table(coins)
        table.insert(3)
        table.decode()
        assert table.is_empty()

    def test_overload_fails(self, coins):
        table = _table(coins, cells=8)
        for key in range(200):
            table.insert(key)
        assert not table.decode().success


class TestMultisetReconciliation:
    def test_subtract_flow(self, coins):
        alice = {1: 2, 2: 1, 3: 4}
        bob = {1: 2, 2: 3, 4: 1}
        a = _table(coins, label="s")
        b = _table(coins, label="s")
        for key, mult in alice.items():
            a.insert(key, mult)
        for key, mult in bob.items():
            b.insert(key, mult)
        result = a.subtract(b).decode()
        assert result.success
        assert result.multiplicities == {2: -2, 3: 4, 4: -1}

    def test_incompatible_rejected(self, coins):
        with pytest.raises(ValueError):
            _table(coins, cells=30).subtract(_table(coins, cells=60))

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        diffs=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_multiset_property(self, seed, diffs):
        rng = np.random.default_rng(seed)
        coins = PublicCoins(seed)
        shared = {int(k): int(m) for k, m in zip(
            rng.choice(1 << 20, size=30, replace=False),
            rng.integers(1, 5, size=30),
        )}
        expected = {}
        a = MultisetIBLT(coins, "hyp", cells=150, q=4, key_bits=25)
        b = MultisetIBLT(coins, "hyp", cells=150, q=4, key_bits=25)
        for key, mult in shared.items():
            a.insert(key, mult)
            b.insert(key, mult)
        for index in range(diffs):
            key = (1 << 21) + index
            mult = int(rng.integers(1, 4))
            if rng.random() < 0.5:
                a.insert(key, mult)
                expected[key] = mult
            else:
                b.insert(key, mult)
                expected[key] = -mult
        result = a.subtract(b).decode()
        assert result.success
        assert result.multiplicities == expected


class TestSerialization:
    def test_roundtrip(self, coins):
        table = _table(coins, label="ser")
        table.insert(42, 7)
        table.delete(99, 2)
        payload, bits = multiset_payload(table)
        loaded = read_multiset_cells(BitReader(payload), _table(coins, label="ser"))
        assert loaded.counts == table.counts
        assert loaded.key_sum == table.key_sum
        assert loaded.check_sum == table.check_sum

    def test_shell_must_be_empty(self, coins):
        payload, _ = multiset_payload(_table(coins, label="x"))
        dirty = _table(coins, label="x")
        dirty.insert(1)
        with pytest.raises(ValueError):
            read_multiset_cells(BitReader(payload), dirty)
