"""Tests for the metric spaces."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metric import GridSpace, HammingSpace


class TestHammingSpace:
    def test_distance_basic(self):
        space = HammingSpace(4)
        assert space.distance((0, 0, 0, 0), (1, 1, 1, 1)) == 4
        assert space.distance((0, 1, 0, 1), (0, 1, 0, 1)) == 0
        assert space.distance((0, 1, 0, 1), (0, 1, 1, 1)) == 1

    def test_diameter(self):
        assert HammingSpace(17).diameter == 17

    def test_log2_universe(self):
        assert HammingSpace(10).log2_universe == pytest.approx(10.0)

    def test_contains(self):
        space = HammingSpace(3)
        assert space.contains((0, 1, 1))
        assert not space.contains((0, 1))
        assert not space.contains((0, 1, 2))

    def test_validate_rejects(self):
        with pytest.raises(ValueError):
            HammingSpace(3).validate((0, 2, 0))

    def test_distance_matrix_matches_loop(self, rng):
        space = HammingSpace(16)
        xs = space.sample(rng, 6)
        ys = space.sample(rng, 5)
        matrix = space.distance_matrix(xs, ys)
        for i, x in enumerate(xs):
            for j, y in enumerate(ys):
                assert matrix[i, j] == space.distance(x, y)

    def test_distance_matrix_empty(self):
        space = HammingSpace(4)
        assert space.distance_matrix([], [(0, 0, 0, 0)]).shape == (0, 1)

    def test_sample_in_space(self, rng):
        space = HammingSpace(8)
        for point in space.sample(rng, 20):
            assert space.contains(point)

    def test_clamp(self):
        space = HammingSpace(3)
        assert space.clamp((1.6, -0.4, 0.4)) == (1, 0, 0)

    def test_dimension_mismatch_raises(self):
        space = HammingSpace(3)
        with pytest.raises(ValueError):
            space.distance((0, 1), (1, 0, 1))


class TestGridSpace:
    def test_l1_distance(self):
        space = GridSpace(side=10, dim=3, p=1.0)
        assert space.distance((0, 0, 0), (1, 2, 3)) == 6

    def test_l2_distance(self):
        space = GridSpace(side=10, dim=2, p=2.0)
        assert space.distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_linf_distance(self):
        space = GridSpace(side=10, dim=3, p=math.inf)
        assert space.distance((0, 0, 0), (1, 5, 3)) == 5

    def test_diameters(self):
        assert GridSpace(side=11, dim=3, p=1.0).diameter == 30
        assert GridSpace(side=11, dim=4, p=2.0).diameter == pytest.approx(20.0)

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            GridSpace(side=10, dim=2, p=0.5)

    def test_rejects_tiny_side(self):
        with pytest.raises(ValueError):
            GridSpace(side=1, dim=2)

    def test_clamp_rounds_and_bounds(self):
        space = GridSpace(side=8, dim=3, p=1.0)
        assert space.clamp((-3.0, 7.6, 3.4)) == (0, 7, 3)

    def test_to_from_array_roundtrip(self, rng):
        space = GridSpace(side=50, dim=5, p=2.0)
        points = space.sample(rng, 7)
        assert space.from_array(space.to_array(points)) == points

    def test_to_array_empty(self):
        space = GridSpace(side=50, dim=5)
        assert space.to_array([]).shape == (0, 5)

    def test_distance_matrix_matches_loop(self, rng):
        for p in (1.0, 2.0):
            space = GridSpace(side=30, dim=3, p=p)
            xs = space.sample(rng, 4)
            ys = space.sample(rng, 6)
            matrix = space.distance_matrix(xs, ys)
            for i, x in enumerate(xs):
                for j, y in enumerate(ys):
                    assert matrix[i, j] == pytest.approx(space.distance(x, y))

    def test_equality(self):
        assert GridSpace(10, 3, 2.0) == GridSpace(10, 3, 2.0)
        assert GridSpace(10, 3, 2.0) != GridSpace(10, 3, 1.0)
        assert GridSpace(10, 3, 1.0) != HammingSpace(3)


@given(
    dim=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_metric_axioms_hamming(dim, seed):
    """Symmetry, identity and triangle inequality on random triples."""
    space = HammingSpace(dim)
    rng = np.random.default_rng(seed)
    x, y, z = space.sample(rng, 3)
    assert space.distance(x, y) == space.distance(y, x)
    assert space.distance(x, x) == 0
    assert space.distance(x, z) <= space.distance(x, y) + space.distance(y, z)


@given(
    p=st.sampled_from([1.0, 2.0]),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_metric_axioms_grid(p, seed):
    space = GridSpace(side=20, dim=4, p=p)
    rng = np.random.default_rng(seed)
    x, y, z = space.sample(rng, 3)
    assert space.distance(x, y) == pytest.approx(space.distance(y, x))
    assert space.distance(x, x) == 0
    assert space.distance(x, z) <= space.distance(x, y) + space.distance(y, z) + 1e-9
