"""Backend parity: the numpy fast path must be bit-identical to python.

The ``"numpy"`` backend replaces per-key Python loops with vectorised
uint64 field arithmetic; these tests pin the contract that, for the same
:class:`~repro.hashing.PublicCoins`, both backends produce the same cell
indices, the same checksums, the same cell state, and the same decode
output — including on *failed* decodes, where the unpeelable 2-core is
order-independent and both peeling disciplines must recover the same
maximal key set.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import PublicCoins
from repro.iblt import IBLT, MultisetIBLT
from repro.reconcile.strata import StrataEstimator

KEY_BITS = 56
KEY_MAX = (1 << KEY_BITS) - 1


def _tables(coins, cells, q, backend_pair=("python", "numpy"), key_bits=KEY_BITS):
    return [
        IBLT(coins, "parity", cells=cells, q=q, key_bits=key_bits, backend=backend)
        for backend in backend_pair
    ]


def _assert_same_cells(python_table, numpy_table):
    assert list(python_table.counts) == numpy_table.counts.tolist()
    assert list(python_table.key_xor) == numpy_table.key_xor.tolist()
    assert list(python_table.check_xor) == numpy_table.check_xor.tolist()


class TestIBLTParity:
    def test_cell_index_matrix_matches_scalar(self, coins):
        table = IBLT(coins, "idx", cells=60, q=3, key_bits=KEY_BITS, backend="numpy")
        rng = np.random.default_rng(1)
        keys = rng.integers(0, KEY_MAX, size=200, dtype=np.uint64)
        matrix = table.cell_index_matrix(keys)
        for column, key in enumerate(keys.tolist()):
            assert matrix[:, column].tolist() == table.cell_indices(key)

    @given(
        keys=st.lists(st.integers(min_value=0, max_value=KEY_MAX), min_size=0, max_size=60),
        q=st.sampled_from([2, 3, 4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_insert_state_identical(self, keys, q):
        coins = PublicCoins(77)
        python_table, numpy_table = _tables(coins, cells=30, q=q)
        python_table.insert_all(keys)
        numpy_table.insert_batch(np.array(keys, dtype=np.uint64))
        _assert_same_cells(python_table, numpy_table)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_subtract_decode_identical(self, data):
        """Same coins → identical decode output, success or not."""
        shared = data.draw(
            st.lists(st.integers(0, KEY_MAX), min_size=0, max_size=40, unique=True)
        )
        alice_only = data.draw(
            st.lists(st.integers(0, KEY_MAX), min_size=0, max_size=15, unique=True)
        )
        bob_only = data.draw(
            st.lists(st.integers(0, KEY_MAX), min_size=0, max_size=15, unique=True)
        )
        alice = sorted(set(shared) | set(alice_only))
        bob = sorted((set(shared) | set(bob_only)) - set(alice_only))
        coins = PublicCoins(data.draw(st.integers(0, 1 << 20)))
        cells = data.draw(st.sampled_from([12, 24, 48]))

        results = {}
        for backend in ("python", "numpy"):
            table_a = IBLT(coins, "sd", cells=cells, q=3, key_bits=KEY_BITS, backend=backend)
            table_b = IBLT(coins, "sd", cells=cells, q=3, key_bits=KEY_BITS, backend=backend)
            table_a.insert_all(alice)
            table_b.insert_all(bob)
            results[backend] = table_b.subtract(table_a).decode()
        assert results["python"].success == results["numpy"].success
        assert sorted(results["python"].inserted) == sorted(results["numpy"].inserted)
        assert sorted(results["python"].deleted) == sorted(results["numpy"].deleted)

    def test_decode_failure_recovers_same_partial_set(self, coins):
        """Overload both backends: the peeled (non-2-core) keys agree."""
        rng = np.random.default_rng(9)
        keys = rng.choice(KEY_MAX, size=200, replace=False).tolist()
        outputs = {}
        for backend in ("python", "numpy"):
            table = IBLT(coins, "over", cells=60, q=3, key_bits=KEY_BITS, backend=backend)
            table.insert_all(keys)
            outputs[backend] = table.decode()
        assert not outputs["python"].success and not outputs["numpy"].success
        assert sorted(outputs["python"].inserted) == sorted(outputs["numpy"].inserted)

    def test_serialization_roundtrip_across_backends(self, coins):
        """A python-built payload loads into a numpy shell bit-for-bit."""
        from repro.protocol.serialize import BitReader
        from repro.protocol.tables import iblt_payload, read_iblt_cells

        keys = list(range(1000, 1012))
        python_table = IBLT(coins, "wire", cells=30, q=3, key_bits=KEY_BITS, backend="python")
        python_table.insert_all(keys)
        payload, _ = iblt_payload(python_table)
        shell = IBLT(coins, "wire", cells=30, q=3, key_bits=KEY_BITS, backend="numpy")
        loaded = read_iblt_cells(BitReader(payload), shell)
        _assert_same_cells(python_table, loaded)
        result = loaded.decode()
        assert result.success and sorted(result.inserted) == keys

    def test_to_arrays_roundtrip(self, coins):
        table = IBLT(coins, "arr", cells=30, q=3, key_bits=KEY_BITS, backend="numpy")
        table.insert_all([7, 8, 9])
        counts, key_xor, check_xor = table.to_arrays()
        python_clone = IBLT(coins, "arr", cells=30, q=3, key_bits=KEY_BITS, backend="python")
        python_clone.load_arrays(counts, key_xor, check_xor)
        _assert_same_cells(python_clone, table)

    def test_wide_keys_fall_back_to_python(self, coins):
        table = IBLT(coins, "wide", cells=30, q=3, key_bits=80)
        assert table.backend == "python"
        with pytest.raises(ValueError):
            IBLT(coins, "wide", cells=30, q=3, key_bits=80, backend="numpy")
        # The whole family honours the same contract.
        assert MultisetIBLT(coins, "wide", cells=30, key_bits=80).backend == "python"
        with pytest.raises(ValueError):
            MultisetIBLT(coins, "wide", cells=30, key_bits=80, backend="numpy")
        assert StrataEstimator(coins, "wide", key_bits=80).backend == "python"
        with pytest.raises(ValueError):
            StrataEstimator(coins, "wide", key_bits=80, backend="numpy")

    def test_large_n_decode_near_threshold(self, coins):
        """A big difference table just under the q=3 peeling threshold
        (load ≈ 0.75 < c*_3 ≈ 0.818) decodes identically on both backends."""
        rng = np.random.default_rng(0xBEEF)
        differences = 3000  # symmetric difference is 2·differences keys
        cells = int(2 * differences / 0.75)
        universe = rng.choice(KEY_MAX, size=20_000 + differences, replace=False)
        alice = universe[: 20_000]
        bob = np.concatenate([universe[differences:20_000], universe[20_000:]])
        outcomes = {}
        for backend in ("python", "numpy"):
            table_a = IBLT(coins, "big", cells=cells, q=3, key_bits=KEY_BITS, backend=backend)
            table_b = IBLT(coins, "big", cells=cells, q=3, key_bits=KEY_BITS, backend=backend)
            table_a.insert_all(alice.tolist())
            table_b.insert_all(bob.tolist())
            outcomes[backend] = table_b.subtract(table_a).decode()
        assert outcomes["numpy"].success
        assert outcomes["python"].success
        assert outcomes["numpy"].difference_count == 2 * differences
        assert sorted(outcomes["python"].inserted) == sorted(outcomes["numpy"].inserted)
        assert sorted(outcomes["python"].deleted) == sorted(outcomes["numpy"].deleted)


class TestMultisetParity:
    @given(
        entries=st.lists(
            st.tuples(st.integers(0, KEY_MAX), st.integers(1, 5)),
            min_size=0,
            max_size=40,
        ),
        seed=st.integers(0, 1 << 20),
    )
    @settings(max_examples=25, deadline=None)
    def test_insert_state_identical(self, entries, seed):
        coins = PublicCoins(seed)
        tables = {
            backend: MultisetIBLT(
                coins, "mp", cells=24, q=3, key_bits=KEY_BITS, backend=backend
            )
            for backend in ("python", "numpy")
        }
        for key, mult in entries:
            tables["python"].insert(key, mult)
        if entries:
            keys, mults = zip(*entries)
            tables["numpy"].insert_batch(
                np.array(keys, dtype=np.uint64), np.array(mults, dtype=np.int64)
            )
        assert tables["python"].counts == tables["numpy"].counts
        assert tables["python"].key_sum == tables["numpy"].key_sum
        assert tables["python"].check_sum == tables["numpy"].check_sum

    def test_subtract_decode_identical(self, coins):
        rng = np.random.default_rng(4)
        alice = {int(k): int(m) for k, m in zip(rng.choice(KEY_MAX, 30, replace=False), rng.integers(1, 4, 30))}
        bob = dict(list(alice.items())[5:])
        bob.update({int(k): 2 for k in rng.choice(KEY_MAX, 5, replace=False)})
        decoded = {}
        for backend in ("python", "numpy"):
            table_a = MultisetIBLT(coins, "msd", cells=60, q=4, key_bits=KEY_BITS, backend=backend)
            table_b = MultisetIBLT(coins, "msd", cells=60, q=4, key_bits=KEY_BITS, backend=backend)
            for key, mult in alice.items():
                table_a.insert(key, mult)
            table_b.insert_batch(
                np.array(list(bob), dtype=np.uint64),
                np.array(list(bob.values()), dtype=np.int64),
            )
            decoded[backend] = table_a.subtract(table_b).decode()
        assert decoded["python"].success == decoded["numpy"].success
        assert decoded["python"].multiplicities == decoded["numpy"].multiplicities


class TestStrataParity:
    def test_stratum_assignment_matches_scalar(self, coins):
        estimator = StrataEstimator(coins, "sa", backend="numpy")
        rng = np.random.default_rng(6)
        keys = rng.integers(0, 1 << 60, size=500, dtype=np.uint64)
        batch = estimator._strata_of_batch(keys)
        for key, stratum in zip(keys.tolist(), batch.tolist()):
            assert estimator._stratum_of(key) == stratum

    @given(seed=st.integers(0, 1 << 20), count=st.integers(0, 300))
    @settings(max_examples=15, deadline=None)
    def test_tables_and_estimate_identical(self, seed, count):
        coins = PublicCoins(seed)
        rng = np.random.default_rng(seed)
        alice = rng.choice(1 << 60, size=count + 50, replace=False)
        bob = alice[count // 2 :]  # overlap with a controlled difference
        estimates = {}
        sketches = {}
        for backend in ("python", "numpy"):
            sketch_a = StrataEstimator(coins, "se", backend=backend)
            sketch_b = StrataEstimator(coins, "se", backend=backend)
            sketch_a.insert_all(int(k) for k in alice)
            sketch_b.insert_all(int(k) for k in bob)
            sketches[backend] = sketch_a
            estimates[backend] = sketch_a.subtract(sketch_b).estimate()
        for python_table, numpy_table in zip(
            sketches["python"].tables, sketches["numpy"].tables
        ):
            assert list(python_table.counts) == numpy_table.counts.tolist()
            assert list(python_table.key_xor) == numpy_table.key_xor.tolist()
        assert estimates["python"] == estimates["numpy"]
