"""The shared peel engine: hash cache, scratch buffers, engine parity.

Three contracts pin the engine introduced for the whole IBLT family:

* the sum-cell decoders' ``"cached"`` engine (batch-primed
  :class:`~repro.iblt.frontier.KeyHashCache`) is bit-identical to the
  pre-engine ``"scalar"`` reference — same FIFO peel sequence, same
  output, same residual cells — for RIBLT (where peel order shapes the
  *value* error propagation) and MultisetIBLT alike;
* repeated ``decode()`` calls on the same table object — which reuse
  the shared scratch buffers and hash caches across calls and across
  ``subtract`` clones — are idempotent: re-decoding identical cell
  state yields identical results, and decoding an emptied table is a
  clean success;
* the cache itself memoises pure functions of the key: primed, scalar
  and vectorised evaluations all agree.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import Checksum, PairwiseHash, PublicCoins
from repro.iblt import IBLT, RIBLT, MultisetIBLT
from repro.iblt.frontier import (
    CACHE_PRIME_THRESHOLD,
    KeyHashCache,
    PeelScratch,
    divisible_key,
)

KEY_BITS = 55
KEY_MAX = (1 << KEY_BITS) - 1


@pytest.fixture
def coins():
    return PublicCoins(20_26)


# -- KeyHashCache -----------------------------------------------------------


class TestKeyHashCache:
    def _cache(self, coins, q=3, block_size=17):
        checksum = Checksum(coins, "cache-check", bits=61)
        hashes = [PairwiseHash(coins, ("cache-cell", j), bits=61) for j in range(q)]
        return cache_tuple(checksum, hashes, block_size)

    def test_primed_scalar_and_vector_agree(self, coins):
        cache, checksum, hashes, block_size = self._cache(coins)
        rng = np.random.default_rng(3)
        keys = rng.choice(KEY_MAX, size=max(64, CACHE_PRIME_THRESHOLD), replace=False)
        cache.prime(keys.tolist())
        assert len(cache) == keys.size
        for key in keys.tolist():
            assert cache.check(key) == checksum(key)
            expected = [
                j * block_size + hashes[j](key) % block_size for j in range(len(hashes))
            ]
            assert cache.indices(key) == expected

    def test_scalar_fallback_memoises(self, coins):
        cache, checksum, hashes, block_size = self._cache(coins)
        assert cache.check(12345) == checksum(12345)
        assert len(cache) == 1
        assert cache.indices(12345) == [
            j * block_size + hashes[j](12345) % block_size
            for j in range(len(hashes))
        ]

    def test_small_batches_skip_priming(self, coins):
        cache, *_ = self._cache(coins)
        cache.prime(list(range(CACHE_PRIME_THRESHOLD - 1)))
        assert len(cache) == 0  # below the adaptive-tail threshold

    def test_duplicate_keys_primed_once(self, coins):
        """Duplicates count once: the batch-vs-scalar decision is made on
        *unique* missing keys, and each is hashed exactly once."""
        cache, checksum, *_ = self._cache(coins)
        unique = list(range(CACHE_PRIME_THRESHOLD))
        cache.prime(unique * 3)
        assert len(cache) == len(unique)
        assert cache.check(7) == checksum(7)


def cache_tuple(checksum, hashes, block_size):
    return KeyHashCache(checksum, hashes, block_size), checksum, hashes, block_size


# -- PeelScratch ------------------------------------------------------------


class TestPeelScratch:
    def test_unique_cells_dedupes_sorted_and_resets(self):
        scratch = PeelScratch()
        touched = np.array([[5, 1, 5], [1, 9, 0]], dtype=np.int64)
        first = scratch.unique_cells(touched, m=12)
        assert first.tolist() == [0, 1, 5, 9]
        # the flag array must have been reset: a fresh call sees nothing
        again = scratch.unique_cells(np.array([[2]], dtype=np.int64), m=12)
        assert again.tolist() == [2]

    def test_ones_candidates(self):
        scratch = PeelScratch()
        counts = np.array([0, 1, -1, 2, -3, 1], dtype=np.int64)
        assert scratch.ones_candidates(counts).tolist() == [1, 2, 5]

    def test_reallocates_on_size_change(self):
        scratch = PeelScratch()
        scratch.unique_cells(np.array([[1]], dtype=np.int64), m=4)
        assert scratch.unique_cells(np.array([[7]], dtype=np.int64), m=9).tolist() == [7]


def test_divisible_key():
    assert divisible_key(0, 10, 1 << 8) is None  # empty cell
    assert divisible_key(2, 10, 1 << 8) == 5
    assert divisible_key(2, 11, 1 << 8) is None  # not divisible
    assert divisible_key(1, 300, 1 << 8) is None  # out of range
    assert divisible_key(-2, -10, 1 << 8) == 5  # negative orientation
    assert divisible_key(1, -3, 1 << 8) is None


# -- sum-cell engine parity -------------------------------------------------


def _signed_pairs(rng: np.random.Generator, pairs: int, duplicates: bool):
    keys = rng.choice(KEY_MAX, size=pairs, replace=False).tolist()
    if duplicates and pairs >= 4:
        keys[1] = keys[0]
        keys[3] = keys[2]
    values = [tuple(int(v) for v in rng.integers(0, 64, size=3)) for _ in range(pairs)]
    signs = [1 if rng.integers(0, 2) else -1 for _ in range(pairs)]
    return list(zip(keys, values, signs))


class TestRIBLTEngineParity:
    @given(
        seed=st.integers(0, 1 << 16),
        pairs=st.integers(1, 40),
        duplicates=st.booleans(),
        overload=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_cached_engine_is_bit_identical(self, seed, pairs, duplicates, overload):
        """Same FIFO peel, same extracted pairs *in order* (so the same
        value-error propagation and rng stream), same residual cells —
        on decodable and overloaded tables alike."""
        rng = np.random.default_rng(seed)
        coins = PublicCoins(seed)
        cells = 27 if overload else max(27, 9 * 2 * pairs)
        tables = {
            engine: RIBLT(
                coins, "parity", cells=cells, q=3, key_bits=KEY_BITS, dim=3, side=64
            )
            for engine in ("scalar", "cached")
        }
        for key, value, sign in _signed_pairs(rng, pairs, duplicates):
            for table in tables.values():
                (table.insert if sign > 0 else table.delete)(key, value)
        results = {
            engine: table.decode(random.Random(99), engine=engine)
            for engine, table in tables.items()
        }
        assert results["cached"].success == results["scalar"].success
        assert results["cached"].inserted == results["scalar"].inserted
        assert results["cached"].deleted == results["scalar"].deleted
        assert results["cached"].peel_rounds == results["scalar"].peel_rounds
        assert tables["cached"].counts == tables["scalar"].counts
        assert tables["cached"].key_sum == tables["scalar"].key_sum
        assert tables["cached"].check_sum == tables["scalar"].check_sum
        assert tables["cached"].value_sum == tables["scalar"].value_sum

    def test_invalid_engine_rejected(self, coins):
        table = RIBLT(coins, "bad", cells=27, q=3, key_bits=KEY_BITS, dim=2, side=8)
        with pytest.raises(ValueError):
            table.decode(engine="vectorised")


class TestMultisetEngineParity:
    @given(
        seed=st.integers(0, 1 << 16),
        updates=st.lists(
            st.tuples(st.integers(0, 60), st.integers(-3, 3)),
            min_size=0,
            max_size=50,
        ),
        backend=st.sampled_from(["numpy", "python"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_cached_engine_is_bit_identical(self, seed, updates, backend):
        coins = PublicCoins(seed)
        tables = {
            engine: MultisetIBLT(
                coins, "parity", cells=24, q=3, key_bits=KEY_BITS, backend=backend
            )
            for engine in ("scalar", "cached")
        }
        for key, multiplicity in updates:
            for table in tables.values():
                table.insert(key, multiplicity)
        results = {
            engine: table.decode(engine=engine) for engine, table in tables.items()
        }
        assert results["cached"].success == results["scalar"].success
        assert results["cached"].multiplicities == results["scalar"].multiplicities
        assert list(results["cached"].multiplicities) == list(
            results["scalar"].multiplicities
        )  # same *peel order*, not just the same mapping
        assert tables["cached"].counts == tables["scalar"].counts
        assert tables["cached"].key_sum == tables["scalar"].key_sum
        assert tables["cached"].check_sum == tables["scalar"].check_sum

    def test_invalid_engine_rejected(self, coins):
        table = MultisetIBLT(coins, "bad", cells=12, q=3)
        with pytest.raises(ValueError):
            table.decode(engine="turbo")


# -- repeated-decode buffer reuse -------------------------------------------


class TestRepeatedDecodeIdempotence:
    """The scratch/cache state shared across ``decode()`` calls (and
    across ``subtract`` clones) is pure work state: re-decoding the same
    cell contents through the same object must give identical results."""

    def test_iblt_reload_and_redecode(self, coins):
        rng = np.random.default_rng(11)
        keys = rng.choice(KEY_MAX, size=90, replace=False).astype(np.uint64)
        table = IBLT(coins, "idem", cells=220, q=3, key_bits=KEY_BITS, backend="numpy")
        table.insert_batch(keys)
        snapshot = table.to_arrays()
        outcomes = []
        for _ in range(3):  # same object, same buffers, three full decodes
            result = table.decode()
            outcomes.append((result.success, result.inserted, result.deleted))
            assert table.is_empty()
            table.load_arrays(*snapshot)
        assert outcomes[0][0] is True
        assert outcomes.count(outcomes[0]) == 3

    def test_iblt_decode_of_emptied_table_is_clean(self, coins):
        table = IBLT(coins, "empty", cells=30, q=3, key_bits=KEY_BITS, backend="numpy")
        table.insert_all([3, 5, 7])
        assert table.decode().success
        second = table.decode()
        assert second.success and second.inserted == [] and second.deleted == []

    def test_iblt_clones_share_scratch_but_not_results(self, coins):
        rng = np.random.default_rng(12)
        keys = rng.choice(KEY_MAX, size=60, replace=False).astype(np.uint64)
        table_a = IBLT(coins, "cl", cells=160, q=3, key_bits=KEY_BITS, backend="numpy")
        table_b = IBLT(coins, "cl", cells=160, q=3, key_bits=KEY_BITS, backend="numpy")
        table_a.insert_batch(keys[:30])
        table_b.insert_batch(keys)
        outcomes = []
        for _ in range(3):  # each subtraction is a fresh clone, shared scratch
            diff = table_b.subtract(table_a)
            assert diff._scratch is table_b._scratch
            assert diff._hash_cache is table_b._hash_cache
            result = diff.decode()
            assert result.success
            outcomes.append((sorted(result.inserted), sorted(result.deleted)))
        assert outcomes.count(outcomes[0]) == 3
        assert outcomes[0] == (sorted(keys[30:].tolist()), [])

    def test_riblt_rebuild_and_redecode(self, coins):
        rng = np.random.default_rng(13)
        pairs = [
            (int(key), (int(rng.integers(0, 9)), int(rng.integers(0, 9))))
            for key in rng.choice(KEY_MAX, size=12, replace=False)
        ]
        table = RIBLT(coins, "idem", cells=9 * 24, q=3, key_bits=KEY_BITS, dim=2, side=9)
        outcomes = []
        for _ in range(3):  # decode empties it (distinct keys: no residue)
            table.insert_pairs(pairs)
            result = table.decode(random.Random(7))
            assert result.success
            assert table.is_empty() and table.residual_value_mass() == 0
            outcomes.append((result.inserted, result.deleted))
        assert outcomes.count(outcomes[0]) == 3

    def test_multiset_rebuild_and_redecode(self, coins):
        table = MultisetIBLT(coins, "idem", cells=30, q=3, key_bits=KEY_BITS)
        outcomes = []
        for _ in range(3):
            table.insert(10, 3)
            table.insert(77, 1)
            table.delete(1234, 2)
            result = table.decode()
            assert result.success
            assert table.is_empty()
            outcomes.append(dict(result.multiplicities))
        assert outcomes.count(outcomes[0]) == 3
        assert outcomes[0] == {10: 3, 77: 1, 1234: -2}
