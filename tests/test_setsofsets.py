"""Tests for the multiset-of-sets reconciliation layer."""

from __future__ import annotations

import pytest

from repro.hashing import PublicCoins
from repro.protocol import Channel
from repro.setsofsets import SetsOfSetsReconciler


def _reconciler(coins, h=8, entry_bits=20, expected=64, **kwargs):
    return SetsOfSetsReconciler(
        coins, "t", entries=h, entry_bits=entry_bits,
        expected_differences=expected, **kwargs,
    )


def _random_keys(rng, count, h=8, bits=20):
    return [
        tuple(int(v) for v in rng.integers(0, 1 << bits, size=h))
        for _ in range(count)
    ]


class TestExactRecovery:
    def test_identical_collections(self, coins, rng):
        keys = _random_keys(rng, 15)
        result = _reconciler(coins).run(keys, keys, Channel())
        assert result.success
        assert result.recovered == {}
        assert sorted(result.shared_alice_keys) == sorted(set(keys))
        assert result.unresolved == 0

    def test_bob_extra_far_key(self, coins, rng):
        alice = _random_keys(rng, 10)
        extra = tuple(int(v) for v in rng.integers(0, 1 << 20, size=8))
        bob = alice + [extra]
        result = _reconciler(coins).run(alice, bob, Channel())
        assert result.success
        assert extra in result.recovered
        assert result.recovered[extra] == 1

    def test_bob_modified_key_patched(self, coins, rng):
        alice = _random_keys(rng, 10)
        modified = list(alice[0])
        modified[3] ^= 0xFFFF
        bob = [tuple(modified)] + alice[1:]
        result = _reconciler(coins).run(alice, bob, Channel())
        assert result.success
        assert tuple(modified) in result.recovered
        assert alice[0] not in result.shared_alice_keys

    def test_view_covers_bob_multiset(self, coins, rng):
        alice = _random_keys(rng, 20)
        bob = list(alice)
        for index in (0, 3, 7):
            modified = list(bob[index])
            modified[index % 8] ^= 0x1234
            bob[index] = tuple(modified)
        bob.append(_random_keys(rng, 1)[0])
        result = _reconciler(coins, expected=128).run(alice, bob, Channel())
        assert result.success
        view = set(result.bob_key_view)
        assert set(bob) <= view

    def test_multiplicities(self, coins, rng):
        alice = _random_keys(rng, 6)
        duplicate = _random_keys(rng, 1)[0]
        bob = alice + [duplicate, duplicate, duplicate]
        result = _reconciler(coins).run(alice, bob, Channel())
        assert result.success
        assert result.recovered[duplicate] == 3

    def test_alice_only_key_not_shared(self, coins, rng):
        alice = _random_keys(rng, 10)
        bob = alice[:-1]  # Bob lacks Alice's last key
        result = _reconciler(coins).run(alice, bob, Channel())
        assert result.success
        assert alice[-1] not in result.shared_alice_keys

    def test_empty_sides(self, coins, rng):
        keys = _random_keys(rng, 5)
        result = _reconciler(coins).run([], keys, Channel())
        assert result.success
        assert sum(result.recovered.values()) == 5
        result2 = _reconciler(coins).run(keys, [], Channel())
        assert result2.success
        assert result2.recovered == {}
        assert result2.shared_alice_keys == []


class TestFailureModes:
    def test_undersized_iblt_reports_failure(self, coins, rng):
        alice = _random_keys(rng, 40)
        bob = _random_keys(rng, 40)  # everything differs
        result = _reconciler(coins, expected=2, size_multiplier=1.0).run(
            alice, bob, Channel()
        )
        assert not result.success

    def test_unresolved_is_safe_direction(self, coins, rng):
        """Unresolved keys may only add to Alice's transmissions; the
        recovered dict must never contain a key Bob does not hold."""
        alice = _random_keys(rng, 15, bits=6)  # tiny value space -> masking
        bob = [list(key) for key in alice]
        for index in range(5):
            bob[index][index % 8] = (bob[index][index % 8] + 1) % 64
        bob = [tuple(key) for key in bob]
        result = _reconciler(coins, entry_bits=6, expected=256).run(
            alice, bob, Channel()
        )
        if result.success:
            for key in result.recovered:
                assert key in bob


class TestCommunication:
    def test_rounds(self, coins, rng):
        keys = _random_keys(rng, 10)
        channel = Channel()
        _reconciler(coins).run(keys, keys, channel)
        assert channel.rounds == 3

    def test_cost_scales_with_difference_not_n(self, rng):
        """The defining property vs. shipping all keys."""
        small_n = _random_keys(rng, 10)
        big_n = _random_keys(rng, 200)

        channel_small = Channel()
        _reconciler(PublicCoins(1)).run(small_n, small_n, channel_small)
        channel_big = Channel()
        _reconciler(PublicCoins(1)).run(big_n, big_n, channel_big)
        # Identical collections: cost driven by the (fixed) table size,
        # up to the varint log-factor from larger per-cell sums.  A 20x
        # larger n must cost far less than 20x the bits (and far less
        # than shipping all keys verbatim).
        assert channel_big.total_bits < 2 * channel_small.total_bits
        naive_bits = 200 * 8 * 20  # n * h * entry_bits
        assert channel_big.total_bits < 1.5 * naive_bits

    def test_verbatim_for_far_keys(self, coins, rng):
        """A completely different key is shipped verbatim, not patched."""
        alice = _random_keys(rng, 5)
        far = _random_keys(rng, 1)[0]
        bob = alice + [far]
        result = _reconciler(coins).run(alice, bob, Channel())
        assert result.success
        assert far in result.recovered
        assert result.unresolved == 0


class TestValidation:
    def test_rejects_bad_entry_bits(self, coins):
        with pytest.raises(ValueError):
            SetsOfSetsReconciler(coins, "x", entries=4, entry_bits=0,
                                 expected_differences=8)
        with pytest.raises(ValueError):
            SetsOfSetsReconciler(coins, "x", entries=4, entry_bits=60,
                                 expected_differences=8)

    def test_rejects_wrong_key_length(self, coins, rng):
        reconciler = _reconciler(coins)
        with pytest.raises(ValueError):
            reconciler.run([(1, 2, 3)], [], Channel())

    def test_rejects_out_of_range_entry(self, coins):
        reconciler = _reconciler(coins, entry_bits=4)
        with pytest.raises(ValueError):
            reconciler.run([tuple([16] * 8)], [], Channel())
