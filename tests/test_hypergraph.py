"""Tests for the random-hypergraph analysis (Lemma B.3, Theorem 2.6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.iblt import (
    classify_component,
    component_census,
    components,
    molloy_threshold,
    peel_order,
    random_hypergraph,
    riblt_sparsity_threshold,
    two_core,
)
from repro.iblt.hypergraph import Component


class TestRandomHypergraph:
    def test_shape(self, rng):
        edges = random_hypergraph(50, 20, 3, rng)
        assert len(edges) == 20
        for edge in edges:
            assert len(edge) == 3
            assert len(set(edge)) == 3
            assert all(0 <= v < 50 for v in edge)

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            random_hypergraph(2, 5, 3, rng)
        with pytest.raises(ValueError):
            random_hypergraph(10, 5, 1, rng)


class TestTwoCore:
    def test_single_edge_peels(self):
        assert two_core(5, [(0, 1, 2)]) == []

    def test_path_of_edges_peels(self):
        edges = [(0, 1, 2), (2, 3, 4), (4, 5, 6)]
        assert two_core(7, edges) == []

    def test_doubled_edge_sticks(self):
        """Two edges over the same 3 vertices: every vertex has degree 2."""
        edges = [(0, 1, 2), (0, 1, 2)]
        assert two_core(3, edges) == [0, 1]

    def test_sparse_random_usually_empty(self):
        rng = np.random.default_rng(0)
        empty = 0
        for _ in range(20):
            edges = random_hypergraph(300, 120, 3, rng)  # load 0.4 < c*_3
            if not two_core(300, edges):
                empty += 1
        assert empty >= 18

    def test_dense_random_usually_nonempty(self):
        rng = np.random.default_rng(1)
        nonempty = 0
        for _ in range(20):
            edges = random_hypergraph(300, 290, 3, rng)  # load ~0.97 > c*_3
            if two_core(300, edges):
                nonempty += 1
        assert nonempty >= 18

    def test_peel_order_is_complete_when_core_empty(self):
        rng = np.random.default_rng(2)
        edges = random_hypergraph(100, 30, 3, rng)
        core = two_core(100, edges)
        order = peel_order(100, edges)
        assert sorted(order + core) == list(range(30))


class TestComponents:
    def test_two_separate_edges(self):
        result = components(10, [(0, 1, 2), (5, 6, 7)])
        assert len(result) == 2
        assert {frozenset(c.vertices) for c in result} == {
            frozenset({0, 1, 2}),
            frozenset({5, 6, 7}),
        }

    def test_chained_edges_one_component(self):
        result = components(10, [(0, 1, 2), (2, 3, 4)])
        assert len(result) == 1
        assert result[0].order == 5
        assert result[0].size == 2

    def test_classification(self):
        tree = Component(frozenset({0, 1, 2}), (0,))
        assert classify_component(tree, q=3) == "tree"
        # Two edges, 3 vertices: excess = 2*2 - 2 = 2 -> complex.
        doubled = Component(frozenset({0, 1, 2}), (0, 1))
        assert classify_component(doubled, q=3) == "complex"
        # Two edges sharing 2 vertices: 4 vertices, excess = 4 - 3 = 1.
        unicyclic = Component(frozenset({0, 1, 2, 3}), (0, 1))
        assert classify_component(unicyclic, q=3) == "unicyclic"

    def test_census_below_riblt_threshold(self):
        """Lemma B.3: below 1/(q(q-1)) everything is a tree or unicyclic."""
        rng = np.random.default_rng(3)
        q = 3
        c = 0.8 * riblt_sparsity_threshold(q)
        complex_count = 0
        for _ in range(10):
            m = 400
            edges = random_hypergraph(m, round(c * m), q, rng)
            census = component_census(m, edges, q)
            complex_count += census["complex"]
        assert complex_count <= 1  # w.h.p. zero; allow a single fluke


class TestThresholds:
    def test_molloy_known_values(self):
        # Known: c*_3 ~ 0.818, c*_4 ~ 0.772 (Molloy 2004).
        assert molloy_threshold(3) == pytest.approx(0.818, abs=0.005)
        assert molloy_threshold(4) == pytest.approx(0.772, abs=0.005)

    def test_riblt_threshold(self):
        assert riblt_sparsity_threshold(3) == pytest.approx(1 / 6)
        assert riblt_sparsity_threshold(4) == pytest.approx(1 / 12)

    def test_riblt_threshold_below_molloy(self):
        for q in (3, 4, 5):
            assert riblt_sparsity_threshold(q) < molloy_threshold(q)

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            molloy_threshold(2)
        with pytest.raises(ValueError):
            riblt_sparsity_threshold(1)
