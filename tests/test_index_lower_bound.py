"""Tests for the Theorem 4.6 lower-bound construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    greedy_binary_code,
    make_index_instance,
    one_round_subset_protocol,
    required_dimension,
    solve_index_via_gap,
)
from repro.hashing import PublicCoins


class TestBinaryCode:
    def test_pairwise_distance(self, rng):
        words = greedy_binary_code(10, 120, 30, rng)
        assert len(words) == 10
        for i in range(10):
            for j in range(i + 1, 10):
                distance = sum(a != b for a, b in zip(words[i], words[j]))
                assert distance >= 30

    def test_rejects_impossible(self, rng):
        with pytest.raises(ValueError):
            greedy_binary_code(4, 10, 20, rng)

    def test_gives_up_when_too_dense(self, rng):
        with pytest.raises(RuntimeError):
            greedy_binary_code(100, 12, 6, rng, max_tries=200)

    def test_required_dimension_grows(self):
        assert required_dimension(10, 4) < required_dimension(10, 40)
        assert required_dimension(10, 4) < required_dimension(10_000, 4)


class TestIndexInstance:
    def test_structure(self, rng):
        x = [1, 0, 1, 1, 0, 0]
        instance = make_index_instance(x, i=2, r2=8, rng=rng)
        assert len(instance.alice_points) == 6
        assert len(instance.bob_points) == 6  # n+1 codewords minus c_i
        assert instance.answer == 1
        # Alice's j-th point ends with x_j.
        for j, point in enumerate(instance.alice_points):
            assert point[-1] == x[j]
        # Bob's points all end in 0.
        for point in instance.bob_points:
            assert point[-1] == 0

    def test_only_target_is_far(self, rng):
        x = [0, 1, 0, 1]
        instance = make_index_instance(x, i=1, r2=8, rng=rng)
        space = instance.space
        distances = space.distance_matrix(instance.alice_points, instance.bob_points)
        minima = distances.min(axis=1)
        for j in range(len(x)):
            if j == instance.i:
                assert minima[j] >= instance.r2
            else:
                assert minima[j] <= 1  # c_j || x_j vs c_j || 0

    def test_rejects_bad_index(self, rng):
        with pytest.raises(ValueError):
            make_index_instance([0, 1], i=5, r2=4, rng=rng)


class TestReductionViaGap:
    def test_multi_round_protocol_solves_index(self):
        correct = 0
        runs = 0
        for seed in range(4):
            rng = np.random.default_rng(seed)
            x = [int(b) for b in rng.integers(0, 2, size=8)]
            i = int(rng.integers(0, 8))
            instance = make_index_instance(x, i=i, r2=10, rng=rng)
            answer, bits, rounds = solve_index_via_gap(
                instance, PublicCoins(seed)
            )
            if answer is None:
                continue
            runs += 1
            assert rounds == 4
            if answer == instance.answer:
                correct += 1
        assert runs >= 3
        assert correct == runs


class TestOneRoundStrawman:
    def test_full_budget_always_succeeds(self):
        x = [0, 1, 1, 0, 1]
        coins = PublicCoins(0)
        assert all(
            one_round_subset_protocol(x, i, budget_bits=5, coins=coins, trial=t)
            for i in range(5)
            for t in range(3)
        )

    def test_zero_budget_is_coin_flip(self):
        rng = np.random.default_rng(0)
        x = [int(b) for b in rng.integers(0, 2, size=64)]
        coins = PublicCoins(1)
        outcomes = [
            one_round_subset_protocol(x, int(rng.integers(0, 64)), 0, coins, trial=t)
            for t in range(400)
        ]
        rate = np.mean(outcomes)
        assert 0.4 < rate < 0.6

    def test_success_grows_with_budget(self):
        """Sweeping the budget shows the Omega(n) wall of Theorem 4.6."""
        rng = np.random.default_rng(2)
        n = 60
        x = [int(b) for b in rng.integers(0, 2, size=n)]
        coins = PublicCoins(2)

        def rate(budget):
            outcomes = [
                one_round_subset_protocol(
                    x, int(rng.integers(0, n)), budget, coins, trial=t
                )
                for t in range(300)
            ]
            return float(np.mean(outcomes))

        low = rate(n // 10)
        high = rate(n)
        assert high == 1.0
        assert low < 0.75
        # 2/3 success requires budget >= ~n/3 in expectation.
        assert rate(n // 20) < 2 / 3
