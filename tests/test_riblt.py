"""Tests for the Robust IBLT (Section 2.2, items 1–5)."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import PublicCoins
from repro.iblt import RIBLT, riblt_cells_for_pairs
from repro.protocol import BitReader, read_riblt_cells, riblt_payload


def _table(coins, cells=108, q=3, key_bits=32, dim=3, side=64, label="r"):
    return RIBLT(
        coins, label, cells=cells, q=q, key_bits=key_bits, dim=dim, side=side
    )


class TestBasics:
    def test_insert_delete_cancels(self, coins):
        table = _table(coins)
        table.insert(5, (1, 2, 3))
        table.delete(5, (1, 2, 3))
        assert table.is_empty()
        assert table.residual_value_mass() == 0

    def test_same_key_different_value_leaves_residue(self, coins):
        """The cancellation residue of Figure 1: count/key zero, value not."""
        table = _table(coins)
        table.insert(5, (1, 2, 3))
        table.delete(5, (1, 2, 9))
        assert all(count == 0 for count in table.counts)
        assert all(key == 0 for key in table.key_sum)
        assert table.residual_value_mass() == 6 * table.q

    def test_requires_q_at_least_3(self, coins):
        with pytest.raises(ValueError):
            RIBLT(coins, "x", cells=12, q=2, key_bits=8, dim=1, side=4)

    def test_value_dimension_enforced(self, coins):
        table = _table(coins, dim=3)
        with pytest.raises(ValueError):
            table.insert(1, (1, 2))

    def test_key_range_enforced(self, coins):
        table = _table(coins, key_bits=8)
        with pytest.raises(ValueError):
            table.insert(300, (0, 0, 0))

    def test_copy_independent(self, coins):
        table = _table(coins)
        table.insert(3, (1, 1, 1))
        clone = table.copy()
        clone.delete(3, (1, 1, 1))
        assert clone.is_empty() and not table.is_empty()


class TestDecode:
    def test_simple_exact_decode(self, coins):
        table = _table(coins)
        pairs = [(10, (1, 2, 3)), (20, (4, 5, 6)), (30, (7, 8, 9))]
        table.insert_pairs(pairs)
        result = table.decode()
        assert result.success
        assert sorted(result.inserted) == sorted(pairs)
        assert result.deleted == []

    def test_signed_decode(self, coins):
        table = _table(coins)
        table.insert(10, (1, 2, 3))
        table.delete(99, (6, 6, 6))
        result = table.decode()
        assert result.success
        assert result.inserted == [(10, (1, 2, 3))]
        assert result.deleted == [(99, (6, 6, 6))]

    def test_duplicate_keys_same_value(self, coins):
        """Item 5: C copies of an identical pair peel in one step."""
        table = _table(coins)
        for _ in range(4):
            table.insert(7, (10, 20, 30))
        result = table.decode()
        assert result.success
        assert result.inserted == [(7, (10, 20, 30))] * 4

    def test_duplicate_keys_values_average(self, coins):
        table = _table(coins)
        table.insert(7, (10, 10, 10))
        table.insert(7, (12, 10, 10))
        result = table.decode(random.Random(1))
        assert result.success
        assert len(result.inserted) == 2
        for key, value in result.inserted:
            assert key == 7
            assert value[0] in (10, 11, 12)  # rounded average of 10 and 12
            assert value[1:] == (10, 10)

    def test_averaged_values_stay_in_space(self, coins):
        table = _table(coins, side=8)
        table.insert(3, (0, 0, 7))
        table.insert(3, (7, 0, 7))
        result = table.decode(random.Random(2))
        assert result.success
        for _, value in result.inserted:
            assert all(0 <= coordinate <= 7 for coordinate in value)

    def test_rounding_is_unbiased(self, coins):
        """Average of 0 and 1 should round to each about half the time."""
        ups = 0
        trials = 400
        for seed in range(trials):
            table = _table(PublicCoins(seed), label="rb")
            table.insert(1, (0, 0, 0))
            table.insert(1, (1, 0, 0))
            result = table.decode(random.Random(seed))
            assert result.success
            ups += sum(value[0] for _, value in result.inserted)
        rate = ups / (2 * trials)
        assert 0.4 < rate < 0.6

    def test_error_propagation_bounded_on_sparse_table(self):
        """Lemma 3.10's phenomenon at the RIBLT level: one noisy pair's
        error perturbs decoded values by a bounded total amount."""
        total_error = 0
        trials = 30
        for seed in range(trials):
            coins = PublicCoins(seed)
            table = _table(coins, cells=180, label="ep")
            rng = np.random.default_rng(seed)
            pairs = [
                (int(key), tuple(int(v) for v in rng.integers(0, 64, size=3)))
                for key in rng.choice(1 << 30, size=8, replace=False)
            ]
            table.insert_pairs(pairs)
            # A cancelled pair with value noise 1 in one coordinate.
            noisy_key = 1 << 31 - 1
            value = (10, 10, 10)
            off = (11, 10, 10)
            table.insert(noisy_key, value)
            table.delete(noisy_key, off)
            result = table.decode(random.Random(seed))
            assert result.success
            recovered = {key: value for key, value in result.inserted}
            for key, original in pairs:
                got = recovered[key]
                total_error += sum(abs(a - b) for a, b in zip(got, original))
        # The initial error has magnitude 1; O(1) propagation means the
        # average per-trial total error stays small.
        assert total_error / trials < 3.0

    def test_decode_empty(self, coins):
        result = _table(coins).decode()
        assert result.success
        assert result.pair_count == 0

    def test_overloaded_fails(self, coins):
        table = _table(coins, cells=9)
        rng = np.random.default_rng(0)
        for key in range(300):
            table.insert(key, tuple(int(v) for v in rng.integers(0, 64, size=3)))
        assert not table.decode().success


class TestSubtract:
    def test_reconciliation_flow(self, coins, rng):
        """Alice inserts, Bob deletes — shared pairs cancel exactly."""
        shared = [
            (int(key), tuple(int(v) for v in rng.integers(0, 64, size=3)))
            for key in rng.choice(1 << 30, size=40, replace=False)
        ]
        alice_only = [(int(1 << 31), (1, 2, 3))]
        bob_only = [(int((1 << 31) + 1), (4, 5, 6))]
        a = _table(coins, label="sub")
        b = _table(coins, label="sub")
        a.insert_pairs(shared + alice_only)
        b.insert_pairs(shared + bob_only)
        result = a.subtract(b).decode()
        assert result.success
        assert result.inserted == alice_only
        assert result.deleted == bob_only

    def test_incompatible_rejected(self, coins):
        a = _table(coins, dim=3, label="x")
        b = _table(coins, dim=2, label="x")
        with pytest.raises(ValueError):
            a.subtract(b)


class TestSerialization:
    def test_roundtrip(self, coins, rng):
        table = _table(coins, label="ser")
        for key in range(25):
            table.insert(key, tuple(int(v) for v in rng.integers(0, 64, size=3)))
        payload, bits = riblt_payload(table)
        assert bits <= 8 * len(payload)
        loaded = read_riblt_cells(BitReader(payload), _table(coins, label="ser"))
        assert loaded.counts == table.counts
        assert loaded.key_sum == table.key_sum
        assert loaded.check_sum == table.check_sum
        assert loaded.value_sum == table.value_sum

    def test_loaded_decodes(self, coins):
        table = _table(coins, label="ser2")
        table.insert(9, (1, 2, 3))
        payload, _ = riblt_payload(table)
        loaded = read_riblt_cells(BitReader(payload), _table(coins, label="ser2"))
        result = loaded.decode()
        assert result.success and result.inserted == [(9, (1, 2, 3))]

    def test_negative_sums_roundtrip(self, coins):
        table = _table(coins, label="ser3")
        table.delete(5, (60, 60, 60))
        payload, _ = riblt_payload(table)
        loaded = read_riblt_cells(BitReader(payload), _table(coins, label="ser3"))
        assert loaded.counts == table.counts
        assert loaded.value_sum == table.value_sum


class TestSizing:
    def test_paper_sizing(self):
        # m = q^2 * pairs with pairs = 4k reproduces m = 4 q^2 k.
        assert riblt_cells_for_pairs(4 * 5, q=3) == 4 * 9 * 5

    def test_load_below_tree_threshold(self):
        """Item 2: accepted load must stay under 1/(q(q-1))."""
        for q in (3, 4, 5):
            pairs = 40
            cells = riblt_cells_for_pairs(pairs, q=q)
            assert pairs / cells < 1.0 / (q * (q - 1))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            riblt_cells_for_pairs(0)
        with pytest.raises(ValueError):
            riblt_cells_for_pairs(5, q=2)


@given(
    seed=st.integers(min_value=0, max_value=3000),
    pairs=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=30, deadline=None)
def test_decode_recovers_distinct_pairs_property(seed, pairs):
    rng = np.random.default_rng(seed)
    coins = PublicCoins(seed)
    table = RIBLT(coins, "hyp", cells=150, q=3, key_bits=30, dim=2, side=32)
    inserted = {}
    for _ in range(pairs):
        key = int(rng.integers(0, 1 << 30))
        if key in inserted:
            continue
        value = tuple(int(v) for v in rng.integers(0, 32, size=2))
        inserted[key] = value
        table.insert(key, value)
    result = table.decode(random.Random(seed))
    assert result.success
    assert sorted(result.inserted) == sorted(inserted.items())


class TestBatchParity:
    """The array-native batch path must be bit-identical to per-pair
    updates — it is what the EMD protocol now feeds its uint64 key
    matrices through."""

    def _random_pairs(self, rng, count, key_bits=32, dim=3, side=64):
        keys = rng.choice(1 << key_bits, size=count, replace=False).astype(np.uint64)
        values = rng.integers(0, side, size=(count, dim), dtype=np.int64)
        return keys, values

    @given(seed=st.integers(min_value=0, max_value=2000),
           count=st.integers(min_value=0, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_insert_batch_matches_per_pair(self, seed, count):
        rng = np.random.default_rng(seed)
        coins = PublicCoins(seed)
        keys, values = self._random_pairs(rng, count)
        batch_table = _table(coins, label="bp")
        pair_table = _table(coins, label="bp")
        batch_table.insert_batch(keys, values)
        pair_table.insert_pairs(
            (int(key), tuple(int(v) for v in row))
            for key, row in zip(keys.tolist(), values.tolist())
        )
        assert batch_table.counts == pair_table.counts
        assert batch_table.key_sum == pair_table.key_sum
        assert batch_table.check_sum == pair_table.check_sum
        assert batch_table.value_sum == pair_table.value_sum

    def test_delete_batch_cancels_insert_batch(self, coins):
        rng = np.random.default_rng(9)
        keys, values = self._random_pairs(rng, 20)
        table = _table(coins, label="bp2")
        table.insert_batch(keys, values)
        table.delete_batch(keys, values)
        assert table.is_empty()
        assert table.residual_value_mass() == 0

    def test_batch_decode_matches_pairs_decode(self, coins):
        rng = np.random.default_rng(11)
        keys, values = self._random_pairs(rng, 12)
        batch_table = _table(coins, label="bp3")
        batch_table.insert_batch(keys, values)
        result = batch_table.decode(random.Random(3))
        assert result.success
        expected = sorted(
            (int(key), tuple(int(v) for v in row))
            for key, row in zip(keys.tolist(), values.tolist())
        )
        assert sorted(result.inserted) == expected

    def test_batch_validates_key_range(self, coins):
        table = _table(coins, key_bits=8, label="bp4")
        with pytest.raises(ValueError):
            table.insert_batch(
                np.array([300], dtype=np.uint64), np.zeros((1, 3), dtype=np.int64)
            )

    def test_batch_validates_shape(self, coins):
        table = _table(coins, label="bp5")
        with pytest.raises(ValueError):
            table.insert_batch(
                np.array([1], dtype=np.uint64), np.zeros((1, 2), dtype=np.int64)
            )
        with pytest.raises(ValueError):
            table.insert_batch(
                np.ones((2, 2), dtype=np.uint64), np.zeros((2, 3), dtype=np.int64)
            )

    def test_empty_batch_noop(self, coins):
        table = _table(coins, label="bp6")
        table.insert_batch(
            np.empty(0, dtype=np.uint64), np.empty((0, 3), dtype=np.int64)
        )
        assert table.is_empty()

    def test_overflow_guard_falls_back_exactly(self, coins):
        """Huge coordinates route through the per-pair path, still exact."""
        keys = np.array([1, 2, 3], dtype=np.uint64)
        values = np.full((3, 3), (1 << 61), dtype=np.int64)
        batch_table = _table(coins, side=1 << 62, label="bp7")
        pair_table = _table(coins, side=1 << 62, label="bp7")
        batch_table.insert_batch(keys, values)
        pair_table.insert_pairs(
            (int(key), tuple(int(v) for v in row))
            for key, row in zip(keys.tolist(), values.tolist())
        )
        assert batch_table.key_sum == pair_table.key_sum
        assert batch_table.value_sum == pair_table.value_sum
