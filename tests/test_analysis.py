"""Tests for the analysis helpers (stats, tables) and the public API."""

from __future__ import annotations


import pytest

from repro.analysis import (
    format_cell,
    format_table,
    run_trials,
    success_rate,
    summarize,
    wilson_interval,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.count == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.confidence_interval() == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_confidence_interval_contains_mean(self):
        summary = summarize(range(100))
        low, high = summary.confidence_interval()
        assert low <= summary.mean <= high

    def test_str(self):
        assert "n=2" in str(summarize([1.0, 2.0]))


class TestWilson:
    def test_bounds(self):
        low, high = wilson_interval(5, 10)
        assert 0 <= low <= 0.5 <= high <= 1

    def test_extremes(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0
        low, high = wilson_interval(20, 20)
        assert high == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_success_rate(self):
        rate, (low, high) = success_rate([True, True, False, True])
        assert rate == pytest.approx(0.75)
        assert low <= rate <= high

    def test_success_rate_empty(self):
        with pytest.raises(ValueError):
            success_rate([])


class TestRunTrials:
    def test_collects_results(self):
        assert run_trials(lambda seed: seed * 2, 4, seed0=10) == [20, 22, 24, 26]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            run_trials(lambda seed: seed, 0)


class TestTables:
    def test_format_cell(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"
        assert format_cell(0.123456) == "0.1235"
        assert format_cell(0.0) == "0"
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"

    def test_format_table_alignment(self):
        table = format_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        table = format_table(["x"], [[1]], title="T1")
        assert table.startswith("T1\n")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestPublicAPI:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import importlib

        for module_name in (
            "repro.hashing",
            "repro.metric",
            "repro.lsh",
            "repro.iblt",
            "repro.branching",
            "repro.protocol",
            "repro.reconcile",
            "repro.setsofsets",
            "repro.workloads",
            "repro.analysis",
            "repro.core",
        ):
            module = importlib.import_module(module_name)
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module_name, name)

    def test_docstrings_on_public_classes(self):
        import repro

        for name in (
            "EMDProtocol",
            "GapProtocol",
            "RIBLT",
            "IBLT",
            "PublicCoins",
            "SetsOfSetsReconciler",
        ):
            assert getattr(repro, name).__doc__, f"{name} lacks a docstring"
