"""Tests for the topology-general gossip layer in core/multiparty."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GapProtocol, Topology, multi_party_gap
from repro.core.multiparty import verify_multi_party_guarantee
from repro.hashing import PublicCoins
from repro.lsh import BitSamplingMLSH
from repro.metric import HammingSpace
from repro.protocol import Channel
from repro.workloads import perturb_point, random_far_point


def _setup(parties=3, n=12, seed=0):
    rng = np.random.default_rng(seed)
    space = HammingSpace(96)
    r1, r2 = 2.0, 32.0
    base = space.sample(rng, n)
    party_sets = []
    anchors = list(base)
    for _ in range(parties):
        points = [perturb_point(space, point, int(r1), rng) for point in base]
        outlier = random_far_point(space, anchors, r2 + 8, rng)
        points.append(outlier)
        anchors.append(outlier)
        party_sets.append(points)
    family = BitSamplingMLSH(space, w=96.0)
    params = family.derived_lsh_params(r1=r1, r2=r2)
    protocol = GapProtocol(
        space, family, params, n=n + parties, k=parties, sos_size_multiplier=6.0
    )
    return space, party_sets, protocol, r2


class TestConstructors:
    def test_star_shape(self):
        topo = Topology.star(5)
        assert topo.kind == "star"
        assert topo.edges == ((0, 1), (0, 2), (0, 3), (0, 4))
        assert topo.depth(0) == 1

    def test_star_off_centre_hub(self):
        topo = Topology.star(4, hub=2)
        assert topo.neighbors(2) == (0, 1, 3)
        assert topo.depth(2) == 1

    def test_ring_shape(self):
        topo = Topology.ring(5)
        assert topo.edges == ((0, 1), (0, 4), (1, 2), (2, 3), (3, 4))
        assert all(len(topo.neighbors(node)) == 2 for node in range(5))
        assert topo.depth(0) == 2

    def test_tree_shape(self):
        topo = Topology.tree(7, branching=2)
        assert topo.edges == ((0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6))
        assert topo.depth(0) == 2

    def test_random_k_regular_is_regular_and_deterministic(self):
        coins = PublicCoins(99)
        topo = Topology.random_k_regular(8, 3, coins)
        assert topo.kind == "random"
        assert all(len(topo.neighbors(node)) == 3 for node in range(8))
        again = Topology.random_k_regular(8, 3, PublicCoins(99))
        assert again.edges == topo.edges
        other = Topology.random_k_regular(8, 3, PublicCoins(100))
        assert isinstance(other, Topology)  # different coins still converge

    def test_build_dispatch(self):
        assert Topology.build("star", 4).edges == Topology.star(4).edges
        assert Topology.build("ring", 4).edges == Topology.ring(4).edges
        assert Topology.build("tree", 4).edges == Topology.tree(4).edges
        coins = PublicCoins(5)
        assert (
            Topology.build("random", 6, coins=coins).edges
            == Topology.random_k_regular(6, 2, coins).edges
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Topology("star", 1, ())
        with pytest.raises(ValueError):
            Topology("star", 3, ((1, 0), (0, 2)))  # not canonical u < v
        with pytest.raises(ValueError):
            Topology("star", 3, ((0, 1), (0, 1), (0, 2)))  # duplicate
        with pytest.raises(ValueError):
            Topology("star", 3, ((0, 1),))  # disconnected
        with pytest.raises(ValueError):
            Topology.build("moebius", 4)
        with pytest.raises(ValueError):
            Topology.build("random", 4)  # random needs coins
        with pytest.raises(ValueError):
            Topology.random_k_regular(5, 3, PublicCoins(0))  # odd stubs

    def test_gossip_schedule_star_is_legacy_order(self):
        up, down = Topology.star(4).gossip_schedule(0)
        assert up == [1, 2, 3]
        assert down == [1, 2, 3]

    def test_gossip_schedule_tree_orders_by_depth(self):
        topo = Topology.tree(7, branching=2)
        up, down = topo.gossip_schedule(0)
        assert up == [3, 4, 5, 6, 1, 2]  # deepest first
        assert down == [1, 2, 3, 4, 5, 6]  # shallowest first


class TestMultiPartyOverTopologies:
    def test_explicit_star_matches_default(self):
        space, party_sets, protocol, r2 = _setup(parties=3)
        default = multi_party_gap(protocol, party_sets, PublicCoins(1))
        explicit = multi_party_gap(
            protocol, party_sets, PublicCoins(1), topology=Topology.star(3)
        )
        assert explicit.total_bits == default.total_bits
        assert explicit.protocol_runs == default.protocol_runs
        assert explicit.final_sets == default.final_sets
        assert explicit.edge_bits == default.edge_bits

    def test_edge_bits_sum_to_total(self):
        space, party_sets, protocol, r2 = _setup(parties=4, seed=3)
        topo = Topology.ring(4)
        result = multi_party_gap(protocol, party_sets, PublicCoins(3), topology=topo)
        assert result.success
        assert result.topology == "ring"
        assert sum(bits for _, _, bits in result.edge_bits) == result.total_bits
        assert set(result.edge_bits_map()) == set(topo.edges)

    def test_non_tree_edges_carry_zero_bits(self):
        space, party_sets, protocol, r2 = _setup(parties=4, seed=4)
        topo = Topology.ring(4)  # edge (2, 3) is not in the BFS tree from 0
        result = multi_party_gap(protocol, party_sets, PublicCoins(4), topology=topo)
        assert result.edge_bits_map()[(2, 3)] == 0
        used = [edge for edge, bits in result.edge_bits_map().items() if bits > 0]
        assert len(used) == 3  # spanning tree of 4 nodes

    @pytest.mark.parametrize("kind", ["ring", "tree", "random"])
    def test_guarantee_holds_off_star(self, kind):
        space, party_sets, protocol, r2 = _setup(parties=4, seed=5)
        topo = Topology.build(kind, 4, coins=PublicCoins(55).child("topo"))
        result = multi_party_gap(protocol, party_sets, PublicCoins(5), topology=topo)
        assert result.success
        assert result.depth == topo.depth(0)
        assert verify_multi_party_guarantee(space, party_sets, result, r2)

    def test_topology_party_count_must_match(self):
        space, party_sets, protocol, r2 = _setup(parties=3)
        with pytest.raises(ValueError):
            multi_party_gap(
                protocol, party_sets, PublicCoins(1), topology=Topology.ring(4)
            )

    def test_channel_totals_match_edge_accounting(self):
        space, party_sets, protocol, r2 = _setup(parties=3, seed=6)
        channel = Channel()
        result = multi_party_gap(
            protocol,
            party_sets,
            PublicCoins(6),
            channel=channel,
            topology=Topology.tree(3),
        )
        assert channel.total_bits == result.total_bits
